//! Figures 1, 2, 3 and 7: the data distributions everything else rests on.

use broadmatch::CorpusStats;
use broadmatch_corpus::{AdCorpus, CorpusConfig, MtPhraseGenerator};

use crate::table::{f2, fi, Table};
use crate::Scale;

/// Fig. 1 — "Bids are short": phrase-length histogram with the paper's
/// quantile checkpoints (62% ≤ 3 words, 96% ≤ 5, 99.8% ≤ 8).
pub fn fig1(scale: Scale, seed: u64) -> CorpusStats {
    println!(
        "== Fig. 1: bid phrase lengths (corpus of {} ads) ==",
        fi(scale.n_ads() as f64)
    );
    let corpus = AdCorpus::generate(CorpusConfig::benchmark(scale.n_ads(), seed));
    let stats = CorpusStats::from_phrases(corpus.phrases());
    let mut t = Table::new(&["words", "phrases", "fraction", "cumulative"]);
    let total = stats.total_phrases.max(1) as f64;
    let mut cum = 0.0;
    for (len, &count) in stats.length_histogram.iter().enumerate().skip(1) {
        let frac = count as f64 / total;
        cum += frac;
        t.row_owned(vec![
            len.to_string(),
            fi(count as f64),
            format!("{:.4}", frac),
            format!("{:.4}", cum),
        ]);
    }
    t.print();
    println!(
        "paper: 62% <= 3 words, 96% <= 5, 99.8% <= 8 | measured: {:.1}% / {:.1}% / {:.2}%\n",
        stats.fraction_with_at_most(3) * 100.0,
        stats.fraction_with_at_most(5) * 100.0,
        stats.fraction_with_at_most(8) * 100.0,
    );
    stats
}

/// Fig. 2 — ads per word set follow a long-tail (Zipf) law. Prints the
/// frequency at log-spaced ranks plus the fitted log-log slope.
pub fn fig2(scale: Scale, seed: u64) -> f64 {
    println!("== Fig. 2: ads per distinct word set (long tail) ==");
    let corpus = AdCorpus::generate(CorpusConfig::benchmark(scale.n_ads(), seed));
    let stats = CorpusStats::from_phrases(corpus.phrases());
    let freqs = &stats.wordset_frequencies;
    let mut t = Table::new(&["rank", "ads_for_wordset"]);
    let mut rank = 1usize;
    while rank <= freqs.len().min(32_768) {
        t.row_owned(vec![fi(rank as f64), fi(freqs[rank - 1] as f64)]);
        rank *= 4;
    }
    t.print();
    let slope = CorpusStats::zipf_slope(freqs, 32_768);
    println!(
        "log-log slope over top-32K combinations: {} (straight line = Zipf; paper plots ~-0.55)\n",
        f2(slope)
    );
    slope
}

/// Fig. 3 — MT phrases vs bids: both peak at 3 words, MT falls off slower.
pub fn fig3(scale: Scale, seed: u64) -> (CorpusStats, CorpusStats) {
    println!("== Fig. 3: bid lengths vs machine-translation phrase lengths ==");
    let corpus = AdCorpus::generate(CorpusConfig::benchmark(scale.n_ads() / 4, seed));
    let bid_stats = CorpusStats::from_phrases(corpus.phrases());
    let mt_phrases = MtPhraseGenerator::new(50_000, seed).generate(scale.n_ads() / 4);
    let mt_stats = CorpusStats::from_phrases(mt_phrases.iter().map(|s| s.as_str()));

    let mut t = Table::new(&["words", "bid_fraction", "mt_fraction"]);
    let max_len = bid_stats
        .length_histogram
        .len()
        .max(mt_stats.length_histogram.len());
    for len in 1..max_len {
        let b = *bid_stats.length_histogram.get(len).unwrap_or(&0) as f64
            / bid_stats.total_phrases.max(1) as f64;
        let m = *mt_stats.length_histogram.get(len).unwrap_or(&0) as f64
            / mt_stats.total_phrases.max(1) as f64;
        t.row_owned(vec![len.to_string(), format!("{b:.4}"), format!("{m:.4}")]);
    }
    t.print();
    println!(
        "mass at >= 6 words:  bids {:.2}%  vs  MT {:.2}%  (paper: MT falls off much slower)\n",
        (1.0 - bid_stats.fraction_with_at_most(5)) * 100.0,
        (1.0 - mt_stats.fraction_with_at_most(5)) * 100.0,
    );
    (bid_stats, mt_stats)
}

/// Fig. 7 — keyword frequencies are far more skewed than word-combination
/// frequencies; also prints the paper's "~3000 vs ~100 elements under the
/// most popular keys" comparison.
pub fn fig7(scale: Scale, seed: u64) -> (f64, f64) {
    println!("== Fig. 7: keyword vs word-combination frequency skew ==");
    let corpus = AdCorpus::generate(CorpusConfig::benchmark(scale.n_ads(), seed));
    let stats = CorpusStats::from_phrases(corpus.phrases());
    let mut t = Table::new(&["rank", "keyword_freq", "wordset_freq"]);
    let mut rank = 1usize;
    let limit = stats
        .keyword_frequencies
        .len()
        .min(stats.wordset_frequencies.len())
        .min(32_768);
    while rank <= limit {
        t.row_owned(vec![
            fi(rank as f64),
            fi(stats.keyword_frequencies[rank - 1] as f64),
            fi(stats.wordset_frequencies[rank - 1] as f64),
        ]);
        rank *= 4;
    }
    t.print();

    let top = 100.min(limit);
    let avg_kw: f64 = stats.keyword_frequencies[..top].iter().sum::<u64>() as f64 / top as f64;
    let avg_ws: f64 = stats.wordset_frequencies[..top].iter().sum::<u64>() as f64 / top as f64;
    println!(
        "avg elements under the 100 most popular keys: keywords {} vs word sets {} ({}x; paper: ~3000 vs ~100)\n",
        fi(avg_kw),
        fi(avg_ws),
        f2(avg_kw / avg_ws.max(1.0)),
    );
    (avg_kw, avg_ws)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_quantiles_hold_at_small_scale() {
        let stats = fig1(Scale::Small, 1);
        assert!((stats.fraction_with_at_most(3) - 0.62).abs() < 0.08);
        assert!(stats.fraction_with_at_most(8) > 0.99);
    }

    #[test]
    fn fig2_slope_is_long_tailed() {
        let slope = fig2(Scale::Small, 1);
        assert!((-1.1..=-0.2).contains(&slope), "slope {slope}");
    }

    #[test]
    fn fig3_mt_tail_is_heavier() {
        let (bids, mt) = fig3(Scale::Small, 1);
        let bid_tail = 1.0 - bids.fraction_with_at_most(5);
        let mt_tail = 1.0 - mt.fraction_with_at_most(5);
        assert!(mt_tail > 5.0 * bid_tail);
    }

    #[test]
    fn fig7_keywords_dominate() {
        let (kw, ws) = fig7(Scale::Small, 1);
        assert!(kw > 3.0 * ws, "avg keyword bucket {kw} vs wordset {ws}");
    }
}
