//! Scenario builders: corpora, workloads and indexes at standard scales.

use broadmatch::{AdInfo, BroadMatchIndex, IndexBuilder, IndexConfig};
use broadmatch_corpus::{AdCorpus, CorpusConfig, QueryGenConfig, Workload};

/// Experiment scale. The paper runs 180M ads on a 16 GB server; these
/// scales keep the same distributional shape at laptop-friendly sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ~20K ads — seconds per experiment, used by tests.
    Small,
    /// ~200K ads — the default for `experiments`.
    Medium,
    /// ~1M ads — minutes per experiment.
    Large,
}

impl Scale {
    /// Parse from a CLI word.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "large" => Some(Scale::Large),
            _ => None,
        }
    }

    /// Number of ads at this scale.
    pub fn n_ads(self) -> usize {
        match self {
            Scale::Small => 20_000,
            Scale::Medium => 200_000,
            Scale::Large => 1_000_000,
        }
    }

    /// Number of distinct workload queries.
    pub fn n_queries(self) -> usize {
        match self {
            Scale::Small => 2_000,
            Scale::Medium => 20_000,
            Scale::Large => 50_000,
        }
    }

    /// Length of a replay trace.
    pub fn trace_len(self) -> usize {
        match self {
            Scale::Small => 20_000,
            Scale::Medium => 100_000,
            Scale::Large => 500_000,
        }
    }
}

/// A fully-built experiment scenario: corpus, workload, and the `(phrase,
/// info)` pairs all structures are built from.
pub struct Scenario {
    /// The generated ad corpus.
    pub corpus: AdCorpus,
    /// The generated query workload.
    pub workload: Workload,
    /// `(phrase, info)` pairs shared by every structure under test.
    pub ads: Vec<(String, AdInfo)>,
    /// Scale this scenario was built at.
    pub scale: Scale,
}

impl Scenario {
    /// Build the standard scenario at `scale` with `seed`.
    pub fn build(scale: Scale, seed: u64) -> Self {
        let corpus = AdCorpus::generate(CorpusConfig::benchmark(scale.n_ads(), seed));
        let workload = Workload::generate(
            QueryGenConfig::benchmark(scale.n_queries(), seed.wrapping_add(1)),
            &corpus,
        );
        let ads: Vec<(String, AdInfo)> = corpus
            .ads()
            .iter()
            .map(|a| (a.phrase.clone(), a.info))
            .collect();
        Scenario {
            corpus,
            workload,
            ads,
            scale,
        }
    }

    /// Build the paper's index over this scenario with `config`, feeding it
    /// the workload when the config wants one.
    pub fn build_index(&self, config: IndexConfig) -> BroadMatchIndex {
        let mut builder = IndexBuilder::with_config(config);
        for (phrase, info) in &self.ads {
            builder
                .add(phrase, *info)
                .expect("generated phrases are valid");
        }
        builder.set_workload(self.workload.to_builder_workload());
        builder.build().expect("valid config")
    }

    /// Sample a replay trace of the scenario's standard length.
    pub fn trace(&self, seed: u64) -> Vec<&str> {
        self.workload.sample_trace(self.scale.trace_len(), seed)
    }
}

/// Wall-clock a closure, returning (result, seconds).
pub fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = std::time::Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use broadmatch::MatchType;

    #[test]
    fn small_scenario_builds_and_queries() {
        let s = Scenario::build(Scale::Small, 42);
        assert!(s.ads.len() > 10_000);
        let index = s.build_index(IndexConfig::default());
        let trace = s.trace(1);
        assert_eq!(trace.len(), Scale::Small.trace_len());
        let hits: usize = trace
            .iter()
            .take(500)
            .map(|q| index.query(q, MatchType::Broad).len())
            .sum();
        assert!(hits > 0, "trace must produce broad matches");
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("medium"), Some(Scale::Medium));
        assert_eq!(Scale::parse("huge"), None);
    }
}
