//! Minimal fixed-width table printing for experiment output.

/// A simple left-aligned text table.
///
/// # Examples
///
/// ```
/// use broadmatch_bench::table::Table;
///
/// let mut t = Table::new(&["structure", "qps"]);
/// t.row(&["hash", "1000000"]);
/// t.row(&["inverted", "10000"]);
/// let s = t.render();
/// assert!(s.contains("structure"));
/// assert!(s.contains("inverted"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    ///
    /// # Panics
    /// Panics on a width mismatch.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Append a row of already-owned cells.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render with padded columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                line.push_str(&format!("{:<w$}  ", c, w = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a float with engineering-style thousands separators.
pub fn fi(v: f64) -> String {
    let n = v.round() as i64;
    let s = n.abs().to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    if n < 0 {
        format!("-{out}")
    } else {
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["a", "long_header"]);
        t.row(&["xxxxxx", "1"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a"));
        assert!(lines[2].starts_with("xxxxxx"));
    }

    #[test]
    fn thousands_separators() {
        assert_eq!(fi(1234567.0), "1,234,567");
        assert_eq!(fi(12.0), "12");
        assert_eq!(fi(-1234.0), "-1,234");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        Table::new(&["a", "b"]).row(&["only one"]);
    }
}
