//! Shared harness for the experiment suite.
//!
//! Every table and figure of the paper's evaluation (Section VII) has a
//! regenerator in [`experiments`]; the `experiments` binary dispatches to
//! them. `cargo run -p broadmatch-bench --release --bin experiments -- all`
//! reproduces the full evaluation at the configured scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod scenario;
pub mod table;

pub use scenario::{Scale, Scenario};
