//! The experiment driver: regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p broadmatch-bench --release --bin experiments -- all
//! cargo run -p broadmatch-bench --release --bin experiments -- fig10 --scale medium
//! ```

use broadmatch_bench::experiments::*;
use broadmatch_bench::Scale;

const USAGE: &str = "usage: experiments <id>... [--scale small|medium|large] [--seed N] [--tiny]

experiment ids:
  fig1             bid phrase length histogram           (Fig. 1)
  fig2             ads-per-word-set long tail            (Fig. 2)
  fig3             MT vs bid phrase lengths              (Fig. 3)
  fig7             keyword vs combination skew           (Fig. 7)
  throughput       hash vs inverted-index throughput     (Sec. VII-A)
  fig8             bytes read vs corpus size             (Fig. 8)
  modified-bytes   modified-index data volume            (Sec. VII-A)
  multiserver      two-server deployment + latency dist  (Sec. VII-B, Fig. 9)
  serve-throughput serving-runtime shard/worker sweep + netsim calibration
  net-throughput   loopback TCP cluster vs netsim fan-out model
  update-churn     online insert/delete + compaction latency (Sec. VI)
  cost-model-fit   predicted vs measured query cost      (Sec. IV-A; --tiny for smoke runs)
  fig10            re-mapping variants                   (Fig. 10)
  counters         simulated hardware counters           (Sec. VII-C)
  compression      node + directory compression          (Sec. VI)
  ablations        max_words / set-cover / cost-model sweeps
  extensions       directory kinds, probe-cap recall, suffix sweep, threads
  export           write the scenario corpus/workload as TSV files in cwd
  all              everything above (except export)";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Medium;
    let mut seed = 42u64;
    let mut tiny = false;
    let mut ids: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tiny" => tiny = true,
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| Scale::parse(s))
                    .unwrap_or_else(|| {
                        eprintln!("{USAGE}");
                        std::process::exit(2);
                    });
            }
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            id => ids.push(id.to_string()),
        }
        i += 1;
    }
    if ids.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    if ids.iter().any(|i| i == "all") {
        ids = [
            "fig1",
            "fig2",
            "fig3",
            "fig7",
            "throughput",
            "fig8",
            "modified-bytes",
            "multiserver",
            "serve-throughput",
            "net-throughput",
            "update-churn",
            "cost-model-fit",
            "fig10",
            "counters",
            "compression",
            "ablations",
            "extensions",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    println!(
        "# Sponsored-search reproduction experiments (scale: {:?}, seed: {seed})\n",
        scale
    );
    for id in &ids {
        match id.as_str() {
            "fig1" => {
                distributions::fig1(scale, seed);
            }
            "fig2" => {
                distributions::fig2(scale, seed);
            }
            "fig3" => {
                distributions::fig3(scale, seed);
            }
            "fig7" => {
                distributions::fig7(scale, seed);
            }
            "throughput" => {
                throughput::run(scale, seed);
            }
            "fig8" => {
                bytes::fig8(scale, seed);
            }
            "modified-bytes" => {
                bytes::modified_bytes(scale, seed);
            }
            "multiserver" => {
                multiserver::run(scale, seed);
            }
            "serve-throughput" => {
                serve_throughput::run(scale, seed);
            }
            "net-throughput" => {
                net_throughput::run(scale, seed);
            }
            "update-churn" => {
                update_churn::run(scale, seed);
            }
            "cost-model-fit" => {
                cost_model_fit::run(scale, seed, tiny);
            }
            "fig10" => {
                remap::fig10(scale, seed);
            }
            "counters" => {
                counters::run(scale, seed);
            }
            "compression" => {
                compression::run(scale, seed);
            }
            "ablations" => {
                ablations::max_words_sweep(scale, seed);
                ablations::setcover_quality(300, seed);
                ablations::cost_model_sweep(scale, seed);
            }
            "extensions" => {
                extensions::directory_kinds(scale, seed);
                extensions::probe_cap_sweep(scale, seed);
                extensions::suffix_sweep(scale, seed);
                extensions::parallel_scaling(scale, seed);
            }
            "export" => {
                let scenario = broadmatch_bench::Scenario::build(scale, seed);
                let corpus_path = format!("corpus_{scale:?}_{seed}.tsv").to_lowercase();
                let workload_path = format!("workload_{scale:?}_{seed}.tsv").to_lowercase();
                let mut f = std::io::BufWriter::new(
                    std::fs::File::create(&corpus_path).expect("create corpus file"),
                );
                scenario.corpus.save_tsv(&mut f).expect("write corpus");
                let mut f = std::io::BufWriter::new(
                    std::fs::File::create(&workload_path).expect("create workload file"),
                );
                scenario.workload.save_tsv(&mut f).expect("write workload");
                println!(
                    "wrote {} ads to {corpus_path} and {} queries to {workload_path}",
                    scenario.ads.len(),
                    scenario.workload.len()
                );
            }
            other => {
                eprintln!("unknown experiment {other:?}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
}
