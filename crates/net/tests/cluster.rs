//! End-to-end loopback cluster: router + 3 backends over a partitioned
//! corpus must answer exactly like a single-threaded index over the whole
//! corpus, and the wire layer's error/overload/metrics paths must work
//! over real sockets.

mod common;

use std::sync::Arc;
use std::time::Duration;

use broadmatch::{AdInfo, MatchType};
use broadmatch_net::wire::{ErrorCode, Request, Response};
use broadmatch_net::{Router, RouterConfig};
use broadmatch_telemetry::Registry;

use common::{backend_over, listing_multiset, partitioned_corpus, probe_queries, truth_hits};

const N_BACKENDS: usize = 3;

#[test]
fn routed_queries_match_single_threaded_truth() {
    let parts = partitioned_corpus(N_BACKENDS, 11);
    let all: Vec<_> = parts.iter().flatten().cloned().collect();
    let backends: Vec<_> = parts.iter().map(|p| backend_over(p)).collect();
    let router = Router::new(
        backends.iter().map(|b| b.local_addr()).collect(),
        RouterConfig::default(),
        Arc::new(Registry::new()),
    );

    let mut multi_shard_hits = 0;
    for (i, query) in probe_queries(&parts, 40).iter().enumerate() {
        let mt = if i % 3 == 0 {
            MatchType::Exact
        } else {
            MatchType::Broad
        };
        let routed = router.query(query, mt);
        assert!(!routed.degraded, "healthy cluster must not degrade");
        assert!(routed.shards.iter().all(|s| s.answered()));
        let truth = truth_hits(&all, query, mt);
        assert_eq!(
            listing_multiset(&routed.hits),
            listing_multiset(&truth),
            "query {query:?} ({mt:?}) diverged from single-threaded truth"
        );
        assert_eq!(routed.stats.hits, truth.len());
        if routed.hits.len() > 1 {
            multi_shard_hits += 1;
        }
    }
    assert!(multi_shard_hits > 0, "corpus too sparse to exercise gather");
}

#[test]
fn mutations_route_to_owners_and_become_visible() {
    let parts = partitioned_corpus(N_BACKENDS, 13);
    let backends: Vec<_> = parts.iter().map(|p| backend_over(p)).collect();
    let router = Router::new(
        backends.iter().map(|b| b.local_addr()).collect(),
        RouterConfig::default(),
        Arc::new(Registry::new()),
    );

    let phrase = "zz brand new gadget";
    let info = AdInfo::with_bid(900_001, 75);
    let resp = router
        .route_mutation(
            phrase,
            &Request::Insert {
                phrase: phrase.into(),
                info,
            },
        )
        .expect("owner reachable");
    let Response::Insert { seq, .. } = resp else {
        panic!("unexpected insert response: {resp:?}");
    };
    assert_eq!(seq, 1, "first logged op on that backend");

    let routed = router.query("zz brand new gadget today", MatchType::Broad);
    assert!(!routed.degraded);
    assert!(
        routed.hits.iter().any(|h| h.info.listing_id == 900_001),
        "inserted ad must be served by the owning backend"
    );

    let removed = router
        .route_mutation(
            phrase,
            &Request::Remove {
                phrase: phrase.into(),
                listing_id: 900_001,
            },
        )
        .expect("owner reachable");
    let Response::Remove { removed, .. } = removed else {
        panic!("unexpected remove response: {removed:?}");
    };
    assert_eq!(removed, 1);
    let routed = router.query("zz brand new gadget today", MatchType::Broad);
    assert!(routed.hits.iter().all(|h| h.info.listing_id != 900_001));
}

#[test]
fn wire_errors_and_metrics_flow_over_sockets() {
    let parts = partitioned_corpus(N_BACKENDS, 17);
    let backend = backend_over(&parts[0]);
    let router = Router::new(
        vec![backend.local_addr()],
        RouterConfig::default(),
        Arc::new(Registry::new()),
    );

    // Empty-phrase insert is rejected by the build layer → BadRequest.
    let resp = router
        .call_backend(
            0,
            &Request::Insert {
                phrase: "   ".into(),
                info: AdInfo::with_bid(1, 1),
            },
        )
        .expect("backend reachable");
    let Response::Error(err) = resp else {
        panic!("expected a BadRequest error, got {resp:?}");
    };
    assert_eq!(err.code, ErrorCode::BadRequest);

    // Health reports the published version and an empty op log.
    let Ok(Response::Health {
        version, oplog_seq, ..
    }) = router.call_backend(0, &Request::Health)
    else {
        panic!("health must answer");
    };
    assert_eq!(version, 1);
    assert_eq!(oplog_seq, 0);

    // The metrics dump carries serve and net families in one exposition.
    let Ok(Response::Metrics { text }) = router.call_backend(0, &Request::Metrics) else {
        panic!("metrics must answer");
    };
    for family in [
        "serve_queries_accepted_total",
        "net_connections_total",
        "net_frames_in_total",
        "net_frames_out_total",
    ] {
        assert!(text.contains(family), "exposition missing {family}");
    }
}

#[test]
fn accept_budget_refuses_with_an_overloaded_frame() {
    let parts = partitioned_corpus(1, 19);
    let runtime = common::runtime_over(&parts[0]);
    let backend = broadmatch_net::Backend::bind(
        "127.0.0.1:0",
        runtime,
        broadmatch_net::BackendConfig {
            max_connections: 1,
            accept_poll: Duration::from_millis(1),
        },
    )
    .expect("bind");

    // First connection occupies the budget.
    let mut first = std::net::TcpStream::connect(backend.local_addr()).expect("connect");
    let Ok(Response::Health { .. }) = broadmatch_net::call(&mut first, &Request::Health, 1) else {
        panic!("first connection must be served");
    };

    // The second is refused with a single unsolicited Overloaded error
    // frame, then closed — no request needs to be sent.
    let mut second = std::net::TcpStream::connect(backend.local_addr()).expect("connect");
    second
        .set_read_timeout(Some(Duration::from_millis(500)))
        .expect("set timeout");
    let frame = broadmatch_net::wire::read_frame(&mut second).expect("refusal frame");
    let Ok(Response::Error(err)) = Response::from_frame(&frame) else {
        panic!("expected an error refusal, got {frame:?}");
    };
    assert_eq!(err.code, ErrorCode::Overloaded);
    assert_eq!(
        broadmatch_net::wire::read_frame(&mut second),
        Err(broadmatch_net::WireError::Closed),
        "refused connection must be closed after the error frame"
    );
}
