//! Fault injection: kill a backend mid-query-stream, assert graceful
//! degradation with correct per-shard status, then restart it as a fresh
//! replica and assert op-log shipping catches it up to **bit-identical**
//! answers.
//!
//! Topology: a 3-way partitioned corpus. Shards 0 and 1 are plain
//! backends. Shard 2 is a primary/replica pair — the router reads from
//! the *replica*, mutations go to the *primary*, and a `ReplicaSyncer`
//! ships the primary's op log across. The test kills the read replica
//! under a live query stream, keeps mutating the primary while the
//! replica is dark, then restarts the replica from the original base and
//! lets the syncer replay history.

mod common;

use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use broadmatch::{AdInfo, MatchType};
use broadmatch_net::wire::{Request, Response};
use broadmatch_net::{
    call, Backend, BackendConfig, ReplicaConfig, ReplicaSyncer, Router, RouterConfig, ShardState,
};
use broadmatch_telemetry::Registry;

use common::{
    backend_over, listing_multiset, partitioned_corpus, probe_queries, runtime_over, truth_hits,
};

const N_SHARDS: usize = 3;

/// Mutations applied to the shard-2 primary while its replica is down:
/// fresh inserts plus removes of existing shard-2 ads.
fn offline_mutations(shard2: &[broadmatch_corpus::GeneratedAd]) -> Vec<Request> {
    let mut ops = Vec::new();
    for i in 0..8u64 {
        ops.push(Request::Insert {
            phrase: format!("zz partition phrase {i}"),
            info: AdInfo::with_bid(800_000 + i, 50 + i as u32),
        });
    }
    for ad in shard2.iter().take(4) {
        ops.push(Request::Remove {
            phrase: ad.phrase.clone(),
            listing_id: ad.info.listing_id,
        });
    }
    ops
}

#[test]
fn kill_degrade_restart_converge() {
    let parts = partitioned_corpus(N_SHARDS, 23);
    let b0 = backend_over(&parts[0]);
    let b1 = backend_over(&parts[1]);
    // Shard 2: primary (write side) + replica (read side, same base).
    let primary = backend_over(&parts[2]);
    let mut replica = Backend::bind(
        "127.0.0.1:0",
        runtime_over(&parts[2]),
        BackendConfig::default(),
    )
    .expect("bind replica");
    let mut syncer = ReplicaSyncer::start(
        primary.local_addr(),
        Arc::clone(replica.runtime()),
        0,
        ReplicaConfig::default(),
    );

    // Tight deadlines keep the degraded path fast once the replica dies
    // (connect to a closed loopback port fails immediately).
    let router = Arc::new(Router::new(
        vec![b0.local_addr(), b1.local_addr(), replica.local_addr()],
        RouterConfig {
            deadline: Duration::from_millis(400),
            hedge_after: Duration::from_millis(80),
            connect_timeout: Duration::from_millis(100),
        },
        Arc::new(Registry::new()),
    ));

    let queries = probe_queries(&parts, 24);
    let all: Vec<_> = parts.iter().flatten().cloned().collect();

    // Phase 1 — healthy cluster answers exactly like one big index.
    for q in &queries {
        let routed = router.query(q, MatchType::Broad);
        assert!(!routed.degraded, "healthy cluster degraded on {q:?}");
        assert_eq!(
            listing_multiset(&routed.hits),
            listing_multiset(&truth_hits(&all, q, MatchType::Broad))
        );
    }

    // Phase 2 — a client thread streams queries while the replica dies.
    let stop = Arc::new(AtomicBool::new(false));
    let degraded_seen = Arc::new(AtomicU64::new(0));
    let streamer = {
        let router = Arc::clone(&router);
        let stop = Arc::clone(&stop);
        let degraded_seen = Arc::clone(&degraded_seen);
        let queries = queries.clone();
        std::thread::spawn(move || {
            let mut i = 0usize;
            // ORDER: Relaxed — test-only stop flag and counter.
            while !stop.load(Ordering::Relaxed) {
                let routed = router.query(&queries[i % queries.len()], MatchType::Broad);
                if routed.degraded {
                    degraded_seen.fetch_add(1, Ordering::Relaxed);
                }
                i += 1;
            }
        })
    };
    std::thread::sleep(Duration::from_millis(30));
    replica.shutdown(); // severs in-flight connections mid-stream
    std::thread::sleep(Duration::from_millis(150));
    stop.store(true, Ordering::Relaxed);
    streamer.join().expect("streamer exits");
    assert!(
        degraded_seen.load(Ordering::Relaxed) > 0,
        "killing a backend under load must surface degraded responses"
    );

    // Deterministic check of the degraded shape: shard 2 dark, 0/1 fine,
    // results exactly the truth over the surviving partitions.
    let survivors: Vec<_> = parts[0].iter().chain(&parts[1]).cloned().collect();
    let routed = router.query(&queries[0], MatchType::Broad);
    assert!(routed.degraded);
    assert!(routed.shards[0].answered() && routed.shards[1].answered());
    assert!(
        matches!(
            routed.shards[2].state,
            ShardState::Failed | ShardState::TimedOut
        ),
        "dead shard reported as {:?}",
        routed.shards[2].state
    );
    assert_eq!(
        listing_multiset(&routed.hits),
        listing_multiset(&truth_hits(&survivors, &queries[0], MatchType::Broad)),
        "degraded response must still be exact over surviving shards"
    );

    // Phase 3 — mutate the primary while the replica is down.
    let mut primary_conn = TcpStream::connect(primary.local_addr()).expect("primary up");
    let mutations = offline_mutations(&parts[2]);
    for (i, m) in mutations.iter().enumerate() {
        match call(&mut primary_conn, m, i as u64 + 1).expect("primary applies mutation") {
            Response::Insert { .. } | Response::Remove { .. } => {}
            other => panic!("unexpected mutation response: {other:?}"),
        }
    }
    let head_seq = primary.oplog().head_seq();
    assert!(head_seq >= mutations.len() as u64 - 4, "ops were logged");

    // Phase 4 — restart the replica from the ORIGINAL base and let the
    // syncer replay the op log from sequence 0.
    drop(syncer);
    let replica2 = Backend::bind(
        "127.0.0.1:0",
        runtime_over(&parts[2]),
        BackendConfig::default(),
    )
    .expect("rebind replica");
    syncer = ReplicaSyncer::start(
        primary.local_addr(),
        Arc::clone(replica2.runtime()),
        0,
        ReplicaConfig::default(),
    );
    assert!(
        syncer.wait_for_seq(head_seq, Duration::from_secs(10)),
        "replica failed to catch up to seq {head_seq}"
    );
    router.set_backend(2, replica2.local_addr());

    // Replica answers must now be bit-identical to the primary's: same
    // base, same op prefix, same insert order ⇒ same AdIds, same hits,
    // same order.
    let mut replica_conn = TcpStream::connect(replica2.local_addr()).expect("replica up");
    let shard2_queries: Vec<String> = parts[2]
        .iter()
        .take(12)
        .map(|ad| format!("{} zzfiller", ad.phrase))
        .chain((0..8).map(|i| format!("zz partition phrase {i} zzfiller")))
        .collect();
    for q in &shard2_queries {
        let req = Request::Query {
            text: q.clone(),
            match_type: MatchType::Broad,
        };
        let Response::Query(on_primary) = call(&mut primary_conn, &req, 77).expect("primary")
        else {
            panic!("primary query failed for {q:?}");
        };
        let Response::Query(on_replica) = call(&mut replica_conn, &req, 78).expect("replica")
        else {
            panic!("replica query failed for {q:?}");
        };
        assert_eq!(
            on_primary.hits, on_replica.hits,
            "replica diverged from primary on {q:?}"
        );
    }

    // And the routed cluster as a whole matches a fresh single-threaded
    // rebuild over (shards 0+1) ∪ (shard 2 after mutations).
    let mut final_shard2: Vec<_> = parts[2].clone();
    for m in &mutations {
        match m {
            Request::Insert { phrase, info } => final_shard2.push(broadmatch_corpus::GeneratedAd {
                phrase: phrase.clone(),
                info: *info,
            }),
            Request::Remove { listing_id, .. } => {
                final_shard2.retain(|ad| ad.info.listing_id != *listing_id);
            }
            _ => {}
        }
    }
    let final_all: Vec<_> = parts[0]
        .iter()
        .chain(&parts[1])
        .chain(&final_shard2)
        .cloned()
        .collect();
    for q in queries.iter().chain(&shard2_queries) {
        let routed = router.query(q, MatchType::Broad);
        assert!(!routed.degraded, "healed cluster still degraded on {q:?}");
        assert_eq!(
            listing_multiset(&routed.hits),
            listing_multiset(&truth_hits(&final_all, q, MatchType::Broad)),
            "healed cluster diverged from fresh rebuild on {q:?}"
        );
    }

    // Replica telemetry recorded the catch-up.
    let applied = replica2
        .runtime()
        .registry()
        .snapshot()
        .counter_total("net_replica_ops_applied_total");
    assert!(applied >= head_seq, "ops applied: {applied} < {head_seq}");
}
