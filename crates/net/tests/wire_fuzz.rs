//! Fuzz-style corpus for the wire decoder: the decoder must be *total* —
//! every byte sequence either decodes or returns a `WireError`, and a
//! successful decode must re-encode to a frame that decodes identically.
//! No input may panic, hang, or provoke an allocation larger than the
//! input itself justifies.

use broadmatch::{AdInfo, MatchType, QueryStats};
use broadmatch_net::wire::{
    self, ErrorCode, ErrorReply, Frame, Opcode, QueryReply, RepOp, Request, Response, MAGIC,
    WIRE_VERSION,
};
use broadmatch_rng::{Pcg32, RandomSource};

fn valid_frames() -> Vec<Frame> {
    let requests = [
        Request::Query {
            text: "cheap used books online".into(),
            match_type: MatchType::Broad,
        },
        Request::Insert {
            phrase: "quantum mechanics books".into(),
            info: AdInfo::with_bid(42, 125),
        },
        Request::Remove {
            phrase: "used books".into(),
            listing_id: 7,
        },
        Request::Compact,
        Request::Metrics,
        Request::Health,
        Request::OplogSubscribe {
            from_seq: 12,
            max_ops: 256,
        },
    ];
    let responses = [
        (
            Response::Query(QueryReply {
                hits: Vec::new(),
                stats: QueryStats::default(),
                version: 3,
            }),
            Opcode::Query,
        ),
        (Response::Insert { ad: 9, seq: 4 }, Opcode::Insert),
        (
            Response::Oplog {
                ops: vec![
                    RepOp::Insert {
                        phrase: "a b c".into(),
                        info: AdInfo::with_bid(1, 10),
                    },
                    RepOp::Remove {
                        phrase: "a b c".into(),
                        listing_id: 1,
                    },
                ],
                next_seq: 2,
                head_seq: 2,
                base_epoch: 0,
            },
            Opcode::OplogSubscribe,
        ),
        (
            Response::Error(ErrorReply {
                code: ErrorCode::Overloaded,
                retry_after_micros: 900,
                detail: "queue full".into(),
            }),
            Opcode::Query,
        ),
        (
            Response::Metrics {
                text: "# HELP a b\na 1\n".into(),
            },
            Opcode::Metrics,
        ),
    ];
    let mut frames: Vec<Frame> = requests.iter().map(|r| r.to_frame(7)).collect();
    frames.extend(responses.iter().map(|(r, op)| r.to_frame(*op, 8)));
    frames
}

/// Decoding must be deterministic and, when it succeeds, canonical:
/// re-encoding the decoded frame reproduces bytes that decode to the
/// same frame (the payload parse is additionally exercised when the
/// opcode admits one).
fn check_total(bytes: &[u8]) {
    // Rejection (`Err`) is a valid outcome; panicking is not.
    if let Ok((frame, used)) = wire::decode_frame(bytes) {
        assert!(used <= bytes.len());
        let mut re = Vec::new();
        wire::encode_frame(&frame, &mut re);
        let (again, _) = wire::decode_frame(&re).expect("re-encoded frame decodes");
        assert_eq!(again, frame);
        // Payload parsers must be total too.
        if frame.flags & wire::flags::RESPONSE == 0 {
            let _ = Request::from_frame(&frame);
        } else {
            let _ = Response::from_frame(&frame);
        }
    }
}

#[test]
fn random_buffers_never_panic_the_decoder() {
    let mut rng = Pcg32::seed_from_u64(0xF0AA_u64 ^ 0xDEAD_BEEF);
    for round in 0..4000 {
        let len = (rng.next_u32() % 96) as usize;
        let mut buf: Vec<u8> = (0..len).map(|_| (rng.next_u32() & 0xFF) as u8).collect();
        check_total(&buf);
        // Seed plausible prefixes so the fuzz reaches past the magic and
        // version checks on a good fraction of rounds.
        if buf.len() >= 5 && round % 2 == 0 {
            buf[..4].copy_from_slice(&MAGIC.to_le_bytes());
            buf[4] = WIRE_VERSION;
            check_total(&buf);
        }
    }
}

#[test]
fn mutated_valid_frames_never_panic_the_decoder() {
    let mut rng = Pcg32::seed_from_u64(2026);
    for frame in valid_frames() {
        let mut bytes = Vec::new();
        wire::encode_frame(&frame, &mut bytes);
        // Single-byte corruptions at every offset.
        for i in 0..bytes.len() {
            let mut m = bytes.clone();
            m[i] ^= 1 << (rng.next_u32() % 8);
            check_total(&m);
        }
        // Every truncation point.
        for cut in 0..bytes.len() {
            check_total(&bytes[..cut]);
        }
        // Random splices of two frames.
        for _ in 0..50 {
            let cut = (rng.next_u32() as usize) % bytes.len();
            let mut m = bytes[..cut].to_vec();
            m.extend_from_slice(&bytes[bytes.len() - cut..]);
            check_total(&m);
        }
    }
}

#[test]
fn oversize_declarations_are_rejected_without_allocation() {
    // A header declaring a payload just over the cap must be rejected by
    // the header check (the slice is only HEADER_LEN long, so an attempt
    // to honor the length would fail loudly).
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&MAGIC.to_le_bytes());
    bytes.push(WIRE_VERSION);
    bytes.push(0x06); // Health
    bytes.extend_from_slice(&0u16.to_le_bytes());
    bytes.extend_from_slice(&1u64.to_le_bytes());
    bytes.extend_from_slice(&(wire::MAX_PAYLOAD + 1).to_le_bytes());
    assert_eq!(
        wire::decode_frame(&bytes),
        Err(wire::WireError::PayloadTooLarge(wire::MAX_PAYLOAD + 1))
    );
}
