//! Shared scaffolding for the loopback-cluster integration tests.

use std::net::SocketAddr;
use std::sync::Arc;

use broadmatch::{IndexBuilder, MatchHit, MatchType};
use broadmatch_corpus::{AdCorpus, CorpusConfig, GeneratedAd};
use broadmatch_net::router::partition_of;
use broadmatch_net::{Backend, BackendConfig};
use broadmatch_serve::{ServeConfig, ServeRuntime};

/// A small deterministic corpus, split across `n` backends by the same
/// partition function the router uses for mutations.
pub fn partitioned_corpus(n: usize, seed: u64) -> Vec<Vec<GeneratedAd>> {
    let corpus = AdCorpus::generate(CorpusConfig::small(seed));
    let mut parts = vec![Vec::new(); n];
    for ad in corpus.ads() {
        parts[partition_of(&ad.phrase, n)].push(ad.clone());
    }
    parts
}

/// A compact serve runtime over `ads` (2 shards, 2 workers).
pub fn runtime_over(ads: &[GeneratedAd]) -> Arc<ServeRuntime> {
    let mut builder = IndexBuilder::new();
    for ad in ads {
        builder
            .add(&ad.phrase, ad.info)
            .expect("valid corpus phrase");
    }
    let index = Arc::new(builder.build().expect("non-empty partition"));
    let config = ServeConfig {
        n_shards: 2,
        n_workers: 2,
        queue_capacity: 256,
        batch_size: 4,
        trace_sample_every: 0,
    };
    Arc::new(ServeRuntime::start(index, config))
}

/// Bind a backend on an ephemeral loopback port over `ads`.
pub fn backend_over(ads: &[GeneratedAd]) -> Backend {
    Backend::bind(
        "127.0.0.1:0".parse::<SocketAddr>().expect("literal addr"),
        runtime_over(ads),
        BackendConfig::default(),
    )
    .expect("bind loopback")
}

/// Single-threaded ground truth over an arbitrary ad list.
pub fn truth_hits(ads: &[GeneratedAd], query: &str, match_type: MatchType) -> Vec<MatchHit> {
    let mut builder = IndexBuilder::new();
    for ad in ads {
        builder
            .add(&ad.phrase, ad.info)
            .expect("valid corpus phrase");
    }
    builder
        .build()
        .expect("non-empty ad list")
        .query(query, match_type)
}

/// Order-independent identity of a hit list: sorted listing ids (listing
/// ids are unique corpus-wide, and `AdId`s are backend-local so they
/// cannot be compared across topologies).
pub fn listing_multiset(hits: &[MatchHit]) -> Vec<u64> {
    let mut ids: Vec<u64> = hits.iter().map(|h| h.info.listing_id).collect();
    ids.sort_unstable();
    ids
}

/// Queries likely to hit several partitions: the first words of corpus
/// phrases combined into broad queries.
pub fn probe_queries(parts: &[Vec<GeneratedAd>], n: usize) -> Vec<String> {
    let mut queries = Vec::new();
    let mut i = 0;
    'outer: loop {
        for part in parts {
            if let Some(ad) = part.get(i) {
                // A broad query is a superset of the bid phrase's word
                // set; append a word that exists nowhere in the corpus.
                queries.push(format!("{} zzfiller", ad.phrase));
                if queries.len() >= n {
                    break 'outer;
                }
            }
        }
        i += 1;
        if i > 10_000 {
            break;
        }
    }
    queries
}
