//! The front end: scatter-gather across shard backends with hedging and
//! graceful degradation.
//!
//! A cluster partitions the ad corpus across `n` backends by
//! [`partition_of`] on the bid phrase; a broad-match query can therefore
//! match on any backend, so the router scatters every query to **all**
//! backends and unions the results (backend order, so the merged hit
//! list is deterministic for a given topology).
//!
//! Tail control follows the classic two-knob scheme:
//!
//! * every backend call carries a **deadline** (`RouterConfig::deadline`),
//!   enforced with socket read timeouts;
//! * a backend that hasn't answered within `hedge_after` gets **one
//!   hedged retry** on a fresh connection with the remaining deadline —
//!   the common cure for a straggler that lost the race to a queue or a
//!   stale pooled connection.
//!
//! A backend that still fails or times out does **not** fail the query:
//! the response comes back with `degraded = true`, the surviving shards'
//! hits, and a per-shard [`ShardStatus`] so the caller can see exactly
//! which partition went dark. Admission-control rejects surface as
//! [`ShardState::Overloaded`] with the backend's retry-after hint.

use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use broadmatch::{MatchHit, MatchType, QueryStats};
use broadmatch_serve::poison;
use broadmatch_telemetry::Registry;
use std::sync::Arc;

use crate::metrics::RouterMetrics;
use crate::wire::{ErrorCode, QueryReply, Request, Response, WireError};

/// Router tail-control knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Per-backend deadline for one scattered query.
    pub deadline: Duration,
    /// Straggler threshold: a backend silent this long gets one hedged
    /// retry on a fresh connection.
    pub hedge_after: Duration,
    /// TCP connect timeout.
    pub connect_timeout: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            deadline: Duration::from_millis(500),
            hedge_after: Duration::from_millis(100),
            connect_timeout: Duration::from_millis(250),
        }
    }
}

/// How one backend fared for one scattered query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// Answered within the hedge threshold.
    Ok,
    /// Answered, but only after a hedged retry.
    Hedged,
    /// Refused by the backend's admission control.
    Overloaded,
    /// No answer within the deadline (hedge included).
    TimedOut,
    /// Connect or transport failure (hedge included).
    Failed,
}

/// Per-backend outcome attached to a routed response.
#[derive(Debug, Clone)]
pub struct ShardStatus {
    /// Backend index in the router's topology.
    pub backend: usize,
    /// Outcome.
    pub state: ShardState,
    /// Round-trip latency for this backend's slot (to failure or success).
    pub latency_ms: f64,
    /// Retry-after hint when `state == Overloaded` (microseconds).
    pub retry_after_micros: u64,
}

impl ShardStatus {
    /// Did this shard contribute results?
    pub fn answered(&self) -> bool {
        matches!(self.state, ShardState::Ok | ShardState::Hedged)
    }
}

/// A gathered (possibly partial) query result.
#[derive(Debug, Clone)]
pub struct RoutedResponse {
    /// Union of the answering shards' hits, in backend order.
    pub hits: Vec<MatchHit>,
    /// Summed statistics across answering shards.
    pub stats: QueryStats,
    /// True when at least one shard failed to contribute.
    pub degraded: bool,
    /// Per-shard outcome, indexed by backend.
    pub shards: Vec<ShardStatus>,
}

struct BackendSlot {
    addr: Mutex<SocketAddr>,
    pool: Mutex<Vec<TcpStream>>,
}

/// A scatter-gather front end over a fixed set of shard backends.
pub struct Router {
    backends: Vec<BackendSlot>,
    config: RouterConfig,
    registry: Arc<Registry>,
    metrics: RouterMetrics,
    next_id: AtomicU64,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("backends", &self.backends.len())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

/// Which backend owns a bid phrase: FNV-1a over the raw phrase bytes,
/// mod the backend count. The corpus loaders in the tests and the
/// `net-throughput` experiment partition with the same function, so
/// single-backend truths compose into cluster truths.
pub fn partition_of(phrase: &str, n_backends: usize) -> usize {
    if n_backends <= 1 {
        return 0;
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in phrase.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h % n_backends as u64) as usize
}

impl Router {
    /// A router over `backends`, with metric families registered in
    /// `registry`.
    pub fn new(backends: Vec<SocketAddr>, config: RouterConfig, registry: Arc<Registry>) -> Router {
        let metrics = RouterMetrics::register(&registry, backends.len());
        Router {
            backends: backends
                .into_iter()
                .map(|addr| BackendSlot {
                    addr: Mutex::new(addr),
                    pool: Mutex::new(Vec::new()),
                })
                .collect(),
            config,
            registry,
            metrics,
            next_id: AtomicU64::new(1),
        }
    }

    /// Number of backends in the topology.
    pub fn n_backends(&self) -> usize {
        self.backends.len()
    }

    /// The router's telemetry registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Repoint backend `i` (service-discovery update after a restart on a
    /// new port). Drops that backend's pooled connections.
    pub fn set_backend(&self, i: usize, addr: SocketAddr) {
        if let Some(slot) = self.backends.get(i) {
            *poison::lock(&slot.addr) = addr;
            poison::lock(&slot.pool).clear();
        }
    }

    fn fresh_id(&self) -> u64 {
        // ORDER: Relaxed — a unique-id counter; no memory is published
        // under this ordering.
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    fn connect(&self, i: usize, timeout: Duration) -> Result<TcpStream, WireError> {
        let slot = self.backends.get(i).ok_or(WireError::Closed)?;
        let addr = *poison::lock(&slot.addr);
        let stream = TcpStream::connect_timeout(&addr, timeout).map_err(WireError::from)?;
        stream.set_nodelay(true).map_err(WireError::from)?;
        Ok(stream)
    }

    fn take_pooled(&self, i: usize) -> Option<TcpStream> {
        self.backends
            .get(i)
            .and_then(|s| poison::lock(&s.pool).pop())
    }

    fn return_pooled(&self, i: usize, conn: TcpStream) {
        if let Some(slot) = self.backends.get(i) {
            poison::lock(&slot.pool).push(conn);
        }
    }

    /// One request/response exchange with backend `i` using the pooled
    /// connection (dialing if none), with `timeout` as the read timeout.
    /// The connection returns to the pool only after a clean exchange; a
    /// timed-out or failed connection is dropped, because a late response
    /// left in its buffer would desynchronize the next caller.
    fn exchange(
        &self,
        i: usize,
        req: &Request,
        timeout: Duration,
        fresh: bool,
    ) -> Result<Response, WireError> {
        let mut conn = match if fresh { None } else { self.take_pooled(i) } {
            Some(c) => c,
            None => self.connect(i, self.config.connect_timeout.min(timeout))?,
        };
        // A zero read timeout means "blocking" to the socket API; clamp.
        let timeout = timeout.max(Duration::from_millis(1));
        conn.set_read_timeout(Some(timeout))
            .map_err(WireError::from)?;
        let resp = crate::server::call(&mut conn, req, self.fresh_id())?;
        self.return_pooled(i, conn);
        Ok(resp)
    }

    /// Call backend `i` directly (mutations, health, metrics, op-log
    /// fetches). Applies the full deadline with no hedging, retrying once
    /// on a fresh connection only when a *pooled* connection failed — a
    /// stale pool entry (backend restarted) shouldn't surface as an error.
    ///
    /// # Errors
    /// [`WireError`] when the backend is unreachable or misbehaving.
    pub fn call_backend(&self, i: usize, req: &Request) -> Result<Response, WireError> {
        let had_pooled = {
            let pooled = self
                .backends
                .get(i)
                .map(|s| !poison::lock(&s.pool).is_empty());
            pooled.unwrap_or(false)
        };
        match self.exchange(i, req, self.config.deadline, false) {
            Ok(r) => Ok(r),
            Err(e) if had_pooled => {
                let _ = e;
                self.exchange(i, req, self.config.deadline, true)
            }
            Err(e) => Err(e),
        }
    }

    /// Route a mutation to the backend owning `phrase`.
    ///
    /// # Errors
    /// [`WireError`] when the owning backend is unreachable.
    pub fn route_mutation(&self, phrase: &str, req: &Request) -> Result<Response, WireError> {
        self.call_backend(partition_of(phrase, self.backends.len()), req)
    }

    /// Scatter a query to every backend, gather with hedging and
    /// degradation. Never fails: with all backends dark the response is
    /// empty, degraded, with per-shard failure states.
    pub fn query(&self, text: &str, match_type: MatchType) -> RoutedResponse {
        let t0 = Instant::now();
        self.metrics.requests_total.inc();
        let req = Request::Query {
            text: text.into(),
            match_type,
        };
        let mut outcomes: Vec<(ShardStatus, Option<QueryReply>)> =
            Vec::with_capacity(self.backends.len());
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.backends.len());
            for i in 0..self.backends.len() {
                let req = &req;
                handles.push(scope.spawn(move || self.query_one(i, req)));
            }
            for h in handles {
                match h.join() {
                    Ok(outcome) => outcomes.push(outcome),
                    Err(_) => outcomes.push((
                        ShardStatus {
                            backend: outcomes.len(),
                            state: ShardState::Failed,
                            latency_ms: 0.0,
                            retry_after_micros: 0,
                        },
                        None,
                    )),
                }
            }
        });

        let mut hits = Vec::new();
        let mut stats = QueryStats::default();
        let mut shards = Vec::with_capacity(outcomes.len());
        let mut degraded = false;
        for (status, reply) in outcomes {
            if let Some(reply) = reply {
                hits.extend(reply.hits);
                add_stats(&mut stats, &reply.stats);
            } else {
                degraded = true;
            }
            shards.push(status);
        }
        stats.hits = hits.len();
        if degraded {
            self.metrics.degraded_total.inc();
        }
        self.metrics
            .query_latency
            .record(t0.elapsed().as_secs_f64() * 1e3);
        RoutedResponse {
            hits,
            stats,
            degraded,
            shards,
        }
    }

    /// One backend's slot of a scattered query: deadline, one hedged
    /// retry, outcome classification.
    fn query_one(&self, i: usize, req: &Request) -> (ShardStatus, Option<QueryReply>) {
        let t0 = Instant::now();
        let deadline = self.config.deadline;
        let first_wait = self.config.hedge_after.min(deadline);

        let first = self.exchange(i, req, first_wait, false);
        let (result, hedged) = match first {
            Ok(r) => (Ok(r), false),
            Err(_) => {
                // Straggler or broken connection: one hedged retry on a
                // fresh connection with whatever deadline remains.
                self.metrics.hedges_total.inc();
                let remaining = deadline.saturating_sub(t0.elapsed());
                if remaining.is_zero() {
                    (first, false)
                } else {
                    (self.exchange(i, req, remaining, true), true)
                }
            }
        };
        let latency_ms = t0.elapsed().as_secs_f64() * 1e3;
        if let Some(h) = self.metrics.backend_latency.get(i) {
            h.record(latency_ms);
        }

        let mut status = ShardStatus {
            backend: i,
            state: ShardState::Failed,
            latency_ms,
            retry_after_micros: 0,
        };
        match result {
            Ok(Response::Query(reply)) => {
                status.state = if hedged {
                    ShardState::Hedged
                } else {
                    ShardState::Ok
                };
                (status, Some(reply))
            }
            Ok(Response::Error(err)) if err.code == ErrorCode::Overloaded => {
                status.state = ShardState::Overloaded;
                status.retry_after_micros = err.retry_after_micros;
                (status, None)
            }
            Ok(_) => {
                if let Some(c) = self.metrics.backend_failures.get(i) {
                    c.inc();
                }
                (status, None)
            }
            Err(e) => {
                let timed_out = matches!(
                    e,
                    WireError::Io(std::io::ErrorKind::WouldBlock)
                        | WireError::Io(std::io::ErrorKind::TimedOut)
                );
                if timed_out {
                    self.metrics.timeouts_total.inc();
                    status.state = ShardState::TimedOut;
                } else if let Some(c) = self.metrics.backend_failures.get(i) {
                    c.inc();
                }
                (status, None)
            }
        }
    }
}

/// Sum `s` into `acc` (hits are recomputed by the caller from the merged
/// list; `truncated` ORs).
fn add_stats(acc: &mut QueryStats, s: &QueryStats) {
    acc.probes += s.probes;
    acc.probe_hits += s.probe_hits;
    acc.nodes_visited += s.nodes_visited;
    acc.entries_examined += s.entries_examined;
    acc.ads_examined += s.ads_examined;
    acc.scanned_bytes += s.scanned_bytes;
    acc.early_terminations += s.early_terminations;
    acc.remapped_nodes += s.remapped_nodes;
    acc.remapped_scan_bytes += s.remapped_scan_bytes;
    acc.tombstone_hits += s.tombstone_hits;
    acc.overlay_hits += s.overlay_hits;
    acc.truncated |= s.truncated;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_stable_and_in_range() {
        for n in 1..8 {
            for phrase in ["cheap used books", "flights to boston", "", "a"] {
                let p = partition_of(phrase, n);
                assert!(p < n);
                assert_eq!(p, partition_of(phrase, n));
            }
        }
        // Not everything lands on one backend.
        let spread: std::collections::HashSet<usize> = (0..100)
            .map(|i| partition_of(&format!("phrase number {i}"), 4))
            .collect();
        assert!(spread.len() > 1);
    }
}
