//! `broadmatch-net`: a real TCP cluster layer for the broad-match serving
//! runtime.
//!
//! `broadmatch-netsim` (Section VII-B of the paper) *predicts* what a
//! multi-server deployment of the index would do; this crate *builds* one
//! and measures it, over loopback or a real network, using only `std`:
//!
//! * [`wire`] — a versioned, length-prefixed binary protocol. Every
//!   operation of the serving runtime (query, insert, remove, compact,
//!   metrics, health, op-log subscribe) is one frame; the decoder is total
//!   and panic-free on arbitrary bytes.
//! * [`server`] — a backend: thread-per-connection TCP server with a
//!   bounded accept budget, handing decoded frames to an embedded
//!   [`broadmatch_serve::ServeRuntime`] and reusing its admission control
//!   (overload surfaces as a wire-level `Overloaded` error with the same
//!   retry-after hint).
//! * [`router`] — the front end: scatter-gathers a query across shard
//!   backends with per-backend deadlines and one hedged retry for
//!   stragglers; backend failure degrades the response (partial results,
//!   `degraded` flag, per-shard status) instead of failing it.
//! * [`replica`] — update shipping: replicas poll the primary's op log
//!   (the PR-3 insert/remove log, with its base epoch) and replay it
//!   locally, converging to bit-identical answers.
//!
//! Everything reports through `broadmatch-telemetry` (`net_*` families),
//! and `experiments net-throughput` closes the loop against the netsim
//! prediction for the same topology.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod oplog;
pub mod replica;
pub mod router;
pub mod server;
pub mod wire;

pub use metrics::NetMetrics;
pub use oplog::OpLog;
pub use replica::{ReplicaConfig, ReplicaSyncer};
pub use router::{partition_of, RoutedResponse, Router, RouterConfig, ShardState, ShardStatus};
pub use server::{call, Backend, BackendConfig};
pub use wire::{
    ErrorCode, ErrorReply, Frame, Opcode, QueryReply, RepOp, Request, Response, WireError,
};
