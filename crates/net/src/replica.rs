//! Replica update shipping: replay the primary's op log locally.
//!
//! A read replica starts from the same base index as its primary (same
//! corpus, same build), then a [`ReplicaSyncer`] thread polls the
//! primary's `OplogSubscribe` wire op from its last applied sequence and
//! replays each [`RepOp`] through its local runtime's delta overlay.
//! Because the overlay applies operations deterministically and the op
//! log is shipped in commit order, *same base + same op prefix ⇒
//! identical answers* — the partition test asserts this bit-for-bit
//! against both the primary and a fresh single-threaded rebuild.
//!
//! The primary's op log is append-only relative to the base the server
//! started from, so a replica (re)started from that base can always
//! catch up from sequence 0, even across primary compactions (folding
//! the overlay changes the primary's *internal* representation, not its
//! answers, and the shipped log is not truncated).
//!
//! The syncer is deliberately pull-based: a poll loop with a reconnect
//! path is trivially correct under partitions — the replica just lags
//! (visible as `net_replica_lag_ops`) and drains the backlog when the
//! primary returns.

use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use broadmatch_serve::ServeRuntime;

use crate::metrics::ReplicaMetrics;
use crate::server::call;
use crate::wire::{RepOp, Request, Response};

/// Replica polling knobs.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Delay between polls when caught up (a non-empty batch polls again
    /// immediately).
    pub poll_interval: Duration,
    /// Max ops fetched per poll.
    pub batch_size: u32,
    /// Socket read timeout / connect timeout toward the primary.
    pub io_timeout: Duration,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            poll_interval: Duration::from_millis(5),
            batch_size: 256,
            io_timeout: Duration::from_millis(250),
        }
    }
}

struct SyncShared {
    stop: AtomicBool,
    applied_seq: AtomicU64,
}

/// A background thread keeping a local runtime caught up with a primary.
pub struct ReplicaSyncer {
    shared: Arc<SyncShared>,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ReplicaSyncer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaSyncer")
            .field("applied_seq", &self.applied_seq())
            .finish_non_exhaustive()
    }
}

impl ReplicaSyncer {
    /// Start syncing `replica` from the backend at `primary`, beginning
    /// at op-log sequence `from_seq` (0 for a replica built from the
    /// primary's initial base). Metric families register into the
    /// replica runtime's registry.
    pub fn start(
        primary: SocketAddr,
        replica: Arc<ServeRuntime>,
        from_seq: u64,
        config: ReplicaConfig,
    ) -> ReplicaSyncer {
        let metrics = ReplicaMetrics::register(replica.registry());
        let shared = Arc::new(SyncShared {
            stop: AtomicBool::new(false),
            applied_seq: AtomicU64::new(from_seq),
        });
        let loop_shared = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("net-replica-sync".into())
            .spawn(move || sync_loop(primary, &replica, &config, &metrics, &loop_shared))
            .ok();
        ReplicaSyncer { shared, thread }
    }

    /// Last op-log sequence applied locally.
    pub fn applied_seq(&self) -> u64 {
        // ORDER: Relaxed — monotonic progress counter for observers; the
        // ops themselves are published by the runtime's own locks.
        self.shared.applied_seq.load(Ordering::Relaxed)
    }

    /// Block until the local runtime has applied through `seq` or
    /// `timeout` elapses; true when caught up.
    pub fn wait_for_seq(&self, seq: u64, timeout: Duration) -> bool {
        let t0 = std::time::Instant::now();
        while self.applied_seq() < seq {
            if t0.elapsed() > timeout {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        true
    }

    /// Stop the sync thread and join it. Idempotent.
    pub fn shutdown(&mut self) {
        // ORDER: SeqCst — must be visible to the poll loop before join.
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ReplicaSyncer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn sync_loop(
    primary: SocketAddr,
    replica: &Arc<ServeRuntime>,
    config: &ReplicaConfig,
    metrics: &ReplicaMetrics,
    shared: &Arc<SyncShared>,
) {
    let mut conn: Option<TcpStream> = None;
    let mut first_attach = true;
    // ORDER: SeqCst — pairs with the store in shutdown().
    while !shared.stop.load(Ordering::SeqCst) {
        let stream = match conn.take() {
            Some(s) => Some(s),
            None => {
                let dialed = TcpStream::connect_timeout(&primary, config.io_timeout)
                    .and_then(|s| {
                        s.set_read_timeout(Some(config.io_timeout))?;
                        s.set_nodelay(true)?;
                        Ok(s)
                    })
                    .ok();
                if dialed.is_some() && !first_attach {
                    metrics.reconnects_total.inc();
                }
                if dialed.is_some() {
                    first_attach = false;
                }
                dialed
            }
        };
        let Some(mut stream) = stream else {
            std::thread::sleep(config.poll_interval);
            continue;
        };

        // ORDER: Relaxed — only this thread writes applied_seq.
        let from_seq = shared.applied_seq.load(Ordering::Relaxed);
        let req = Request::OplogSubscribe {
            from_seq,
            max_ops: config.batch_size,
        };
        match call(&mut stream, &req, from_seq) {
            Ok(Response::Oplog {
                ops,
                next_seq,
                head_seq,
                base_epoch: _,
            }) => {
                let caught_up = ops.is_empty();
                for op in ops {
                    apply_op(replica, &op);
                    metrics.ops_applied_total.inc();
                }
                // ORDER: Relaxed — progress counter; see applied_seq().
                shared.applied_seq.store(next_seq, Ordering::Relaxed);
                metrics
                    .lag_ops
                    .set(head_seq.saturating_sub(next_seq) as f64);
                conn = Some(stream);
                if caught_up {
                    std::thread::sleep(config.poll_interval);
                }
            }
            Ok(_) => {
                // Protocol confusion: drop the connection and redial.
                std::thread::sleep(config.poll_interval);
            }
            Err(_) => {
                // Primary unreachable or mid-restart: back off, redial.
                std::thread::sleep(config.poll_interval);
            }
        }
    }
}

/// Replay one shipped op against the local runtime. Insert failures are
/// impossible for ops the primary accepted (same validation), but are
/// swallowed rather than crash the sync thread.
fn apply_op(replica: &Arc<ServeRuntime>, op: &RepOp) {
    match op {
        RepOp::Insert { phrase, info } => {
            let _ = replica.insert(phrase, *info);
        }
        RepOp::Remove { phrase, listing_id } => {
            let _ = replica.remove(phrase, *listing_id);
        }
    }
}
