//! The backend: a thread-per-connection TCP server wrapping a
//! [`ServeRuntime`].
//!
//! Each accepted connection gets a handler thread that decodes frames,
//! dispatches them to the embedded runtime, and writes responses. The
//! design leans entirely on the serve layer for the hard parts:
//! admission control (a full shard queue surfaces on the wire as an
//! `Overloaded` error frame carrying the runtime's retry-after hint),
//! snapshot consistency (RCU swap), and poison recovery.
//!
//! The accept loop enforces a **bounded accept budget**: past
//! `max_connections` concurrent clients, a new connection is answered
//! with a single `Overloaded` error frame and closed, so an open-socket
//! flood cannot exhaust threads. The listener runs non-blocking and
//! polls a stop flag; [`Backend::shutdown`] additionally half-closes
//! every registered live connection, which unblocks handler threads
//! mid-read — this is the hook the partition test uses to kill a backend
//! *mid-query-stream* rather than between requests.

use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use broadmatch_serve::{poison, ServeError, ServeRuntime};

use crate::metrics::NetMetrics;
use crate::oplog::OpLog;
use crate::wire::{
    self, ErrorCode, ErrorReply, Frame, Opcode, QueryReply, RepOp, Request, Response, WireError,
};

/// Backend sizing knobs.
#[derive(Debug, Clone)]
pub struct BackendConfig {
    /// Accept budget: concurrent connections beyond this are refused
    /// with an `Overloaded` error frame.
    pub max_connections: usize,
    /// Poll interval of the non-blocking accept loop.
    pub accept_poll: Duration,
}

impl Default for BackendConfig {
    fn default() -> Self {
        BackendConfig {
            max_connections: 64,
            accept_poll: Duration::from_millis(2),
        }
    }
}

struct BackendShared {
    runtime: Arc<ServeRuntime>,
    oplog: Arc<OpLog>,
    metrics: NetMetrics,
    stop: AtomicBool,
    active: AtomicU64,
    config: BackendConfig,
    // try_clone'd handles of live connections, so shutdown can sever them
    // mid-read. Slots are compacted opportunistically on disconnect.
    conns: Mutex<Vec<TcpStream>>,
}

/// A running backend server. Dropping it shuts the server down.
pub struct Backend {
    shared: Arc<BackendShared>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Backend")
            .field("addr", &self.addr)
            .field(
                "active",
                // ORDER: Relaxed — debug display, no synchronization implied.
                &self.shared.active.load(Ordering::Relaxed),
            )
            .finish_non_exhaustive()
    }
}

impl Backend {
    /// Bind `addr` (use port 0 for an ephemeral port) and serve `runtime`
    /// on it. Net metric families register into the runtime's registry,
    /// so one `Metrics` frame exposes serve + net together.
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn bind(
        addr: impl ToSocketAddrs,
        runtime: Arc<ServeRuntime>,
        config: BackendConfig,
    ) -> std::io::Result<Backend> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let metrics = NetMetrics::register(runtime.registry());
        let shared = Arc::new(BackendShared {
            runtime,
            oplog: Arc::new(OpLog::new()),
            metrics,
            stop: AtomicBool::new(false),
            active: AtomicU64::new(0),
            config,
            conns: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name(format!("net-accept-{}", local.port()))
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(Backend {
            shared,
            addr: local,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The replication log this backend appends effective mutations to.
    pub fn oplog(&self) -> &Arc<OpLog> {
        &self.shared.oplog
    }

    /// The embedded serving runtime.
    pub fn runtime(&self) -> &Arc<ServeRuntime> {
        &self.shared.runtime
    }

    /// Stop accepting, sever every live connection (mid-read included),
    /// and join the accept thread. Idempotent.
    pub fn shutdown(&mut self) {
        // ORDER: SeqCst — the stop flag must be visible to the accept loop
        // and every handler before we sever their sockets, so a woken
        // thread re-checks it and exits instead of looping on an error.
        self.shared.stop.store(true, Ordering::SeqCst);
        {
            let mut conns = poison::lock(&self.shared.conns);
            for conn in conns.drain(..) {
                let _ = conn.shutdown(Shutdown::Both);
            }
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Backend {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<BackendShared>) {
    // ORDER: SeqCst — pairs with the SeqCst store in shutdown().
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_nodelay(true);
                handle_accept(stream, &shared);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(shared.config.accept_poll);
            }
            Err(_) => {
                // Transient accept failure (EMFILE, reset during
                // handshake); back off and keep serving.
                std::thread::sleep(shared.config.accept_poll);
            }
        }
    }
}

fn handle_accept(mut stream: TcpStream, shared: &Arc<BackendShared>) {
    // ORDER: SeqCst — the budget check must observe decrements from
    // concurrently exiting handlers; an occasional off-by-one refusal
    // under racing accepts is acceptable, silent unbounded growth is not.
    let active = shared.active.load(Ordering::SeqCst);
    if active >= shared.config.max_connections as u64 {
        shared.metrics.connections_refused_total.inc();
        let refusal = Response::Error(ErrorReply {
            code: ErrorCode::Overloaded,
            retry_after_micros: 10_000,
            detail: "accept budget exhausted".into(),
        })
        .to_frame(Opcode::Health, 0);
        let _ = wire::write_frame(&mut stream, &refusal);
        let _ = stream.shutdown(Shutdown::Both);
        return;
    }
    shared.metrics.connections_total.inc();
    // ORDER: SeqCst — symmetric with the budget load above.
    shared.active.fetch_add(1, Ordering::SeqCst);
    shared.metrics.connections_active.add(1.0);
    if let Ok(clone) = stream.try_clone() {
        poison::lock(&shared.conns).push(clone);
    }
    let conn_shared = Arc::clone(shared);
    let spawned = std::thread::Builder::new()
        .name("net-conn".into())
        .spawn(move || {
            connection_loop(&mut stream, &conn_shared);
            let _ = stream.shutdown(Shutdown::Both);
            // ORDER: SeqCst — symmetric with the budget fetch_add.
            conn_shared.active.fetch_sub(1, Ordering::SeqCst);
            conn_shared.metrics.connections_active.add(-1.0);
        });
    if spawned.is_err() {
        // Thread spawn failed (resource exhaustion): undo the accounting.
        // ORDER: SeqCst — symmetric with the budget fetch_add.
        shared.active.fetch_sub(1, Ordering::SeqCst);
        shared.metrics.connections_active.add(-1.0);
    }
}

fn connection_loop(stream: &mut TcpStream, shared: &Arc<BackendShared>) {
    loop {
        // ORDER: SeqCst — pairs with the SeqCst store in shutdown(); a
        // handler woken by a severed socket must see stop=true.
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let frame = match wire::read_frame(stream) {
            Ok(f) => f,
            Err(WireError::Closed) => return,
            Err(WireError::Io(_)) => return,
            Err(_) => {
                // Protocol violation: not our protocol or a corrupted
                // peer. Count it and hang up — resynchronizing a framed
                // stream after garbage is guesswork.
                shared.metrics.decode_errors_total.inc();
                return;
            }
        };
        shared.metrics.frames_in_total.inc();
        let request_id = frame.request_id;
        let opcode = frame.opcode;
        let response = match Request::from_frame(&frame) {
            Ok(req) => dispatch(&req, shared),
            Err(e) => {
                shared.metrics.decode_errors_total.inc();
                Response::Error(ErrorReply {
                    code: ErrorCode::BadRequest,
                    retry_after_micros: 0,
                    detail: e.to_string(),
                })
            }
        };
        if matches!(response, Response::Error(_)) {
            shared.metrics.errors_out_total.inc();
        }
        let out = response.to_frame(opcode, request_id);
        if write_response(stream, &out).is_err() {
            return;
        }
        shared.metrics.frames_out_total.inc();
    }
}

fn write_response(stream: &mut TcpStream, frame: &Frame) -> std::io::Result<()> {
    let mut buf = Vec::new();
    wire::encode_frame(frame, &mut buf);
    stream.write_all(&buf)?;
    stream.flush()
}

/// Execute one decoded request against the embedded runtime.
fn dispatch(req: &Request, shared: &Arc<BackendShared>) -> Response {
    match req {
        Request::Query { text, match_type } => match shared.runtime.query(text, *match_type) {
            Ok(resp) => Response::Query(QueryReply {
                hits: resp.hits,
                stats: resp.stats,
                version: resp.version,
            }),
            Err(ServeError::Overloaded { retry_after }) => Response::Error(ErrorReply {
                code: ErrorCode::Overloaded,
                retry_after_micros: retry_after.as_micros() as u64,
                detail: "admission control".into(),
            }),
            Err(ServeError::ShuttingDown) => Response::Error(ErrorReply {
                code: ErrorCode::ShuttingDown,
                retry_after_micros: 0,
                detail: "runtime shutting down".into(),
            }),
        },
        Request::Insert { phrase, info } => match shared.runtime.insert(phrase, *info) {
            Ok(ad) => {
                let seq = shared.oplog.append(RepOp::Insert {
                    phrase: phrase.clone(),
                    info: *info,
                });
                Response::Insert { ad: ad.raw(), seq }
            }
            Err(e) => Response::Error(ErrorReply {
                code: ErrorCode::BadRequest,
                retry_after_micros: 0,
                detail: e.to_string(),
            }),
        },
        Request::Remove { phrase, listing_id } => {
            let removed = shared.runtime.remove(phrase, *listing_id);
            let seq = if removed > 0 {
                shared.oplog.append(RepOp::Remove {
                    phrase: phrase.clone(),
                    listing_id: *listing_id,
                })
            } else {
                shared.oplog.head_seq()
            };
            Response::Remove {
                removed: removed as u64,
                seq,
            }
        }
        Request::Compact => match shared.runtime.compact_now() {
            Ok(version) => Response::Compact {
                version: version.unwrap_or(0),
            },
            Err(e) => Response::Error(ErrorReply {
                code: ErrorCode::Internal,
                retry_after_micros: 0,
                detail: e.to_string(),
            }),
        },
        Request::Metrics => Response::Metrics {
            text: shared.runtime.prometheus(),
        },
        Request::Health => {
            let (_, version) = shared.runtime.current();
            Response::Health {
                version,
                oplog_seq: shared.oplog.head_seq(),
                base_epoch: shared.runtime.base_epoch(),
            }
        }
        Request::OplogSubscribe { from_seq, max_ops } => {
            let (ops, next_seq, head_seq) = shared.oplog.since(*from_seq, *max_ops);
            Response::Oplog {
                ops,
                next_seq,
                head_seq,
                base_epoch: shared.runtime.base_epoch(),
            }
        }
    }
}

/// Blocking client helper: send `req` on `stream` and read the matching
/// response (skipping any frame whose id doesn't match, which cannot
/// happen on a well-behaved connection but keeps the client total).
///
/// # Errors
/// [`WireError`] on transport or protocol failure.
pub fn call(stream: &mut TcpStream, req: &Request, request_id: u64) -> Result<Response, WireError> {
    let frame = req.to_frame(request_id);
    let mut buf = Vec::new();
    wire::encode_frame(&frame, &mut buf);
    stream.write_all(&buf).map_err(WireError::from)?;
    stream.flush().map_err(WireError::from)?;
    loop {
        let reply = wire::read_frame(stream)?;
        if reply.request_id == request_id {
            return Response::from_frame(&reply);
        }
    }
}
