//! The versioned, length-prefixed binary wire protocol.
//!
//! Every message on a cluster connection is one **frame**:
//!
//! | field       | size | notes                                   |
//! |-------------|------|-----------------------------------------|
//! | magic       | 4    | `0x424D_4E45` ("BMNE"), little-endian   |
//! | version     | 1    | [`WIRE_VERSION`]                        |
//! | opcode      | 1    | [`Opcode`]                              |
//! | flags       | 2    | [`flags`] bits: response/error/degraded |
//! | request id  | 8    | echoed verbatim in the response         |
//! | payload len | 4    | bytes following the header              |
//!
//! All integers are little-endian. Strings are `u32` length-prefixed
//! UTF-8. The decoder is **total**: any byte sequence either decodes or
//! returns a [`WireError`] — it never panics and never allocates more
//! than the declared (bounds-checked) payload length, so a malicious or
//! corrupted peer cannot crash or balloon a server. The fuzz-style
//! corpus in `tests/wire_fuzz.rs` holds the decoder to that contract.

use std::io::{Read, Write};

use broadmatch::{AdId, AdInfo, MatchHit, MatchType, QueryStats};

/// Frame magic: "BMNE" (BroadMatch NEt) as a little-endian `u32`.
pub const MAGIC: u32 = 0x454E_4D42;

/// Current protocol version. A server refuses frames from a newer major
/// version rather than mis-parsing them.
pub const WIRE_VERSION: u8 = 1;

/// Size of the fixed frame header in bytes.
pub const HEADER_LEN: usize = 20;

/// Upper bound on a frame payload: large enough for a full metrics dump
/// or a fat op-log batch, small enough that a hostile length field cannot
/// balloon allocation.
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// Upper bound on any single string field (query text, phrase, metrics
/// exposition chunk).
pub const MAX_STRING: u32 = 4 * 1024 * 1024;

/// Frame flag bits.
pub mod flags {
    /// The frame is a response (otherwise a request).
    pub const RESPONSE: u16 = 1 << 0;
    /// The response carries an [`super::ErrorReply`] payload.
    pub const ERROR: u16 = 1 << 1;
    /// The response is partial: at least one shard failed or timed out.
    pub const DEGRADED: u16 = 1 << 2;
}

/// Operation selector of a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Run a query (broad/exact/phrase).
    Query = 0x01,
    /// Insert an ad through the delta overlay.
    Insert = 0x02,
    /// Remove ads by exact phrase + listing id.
    Remove = 0x03,
    /// Fold the overlay into a rebuilt base now.
    Compact = 0x04,
    /// Dump the telemetry registry (Prometheus text exposition).
    Metrics = 0x05,
    /// Liveness + replication positions.
    Health = 0x06,
    /// Fetch a batch of op-log entries from `from_seq`.
    OplogSubscribe = 0x07,
}

impl Opcode {
    fn from_u8(b: u8) -> Option<Opcode> {
        match b {
            0x01 => Some(Opcode::Query),
            0x02 => Some(Opcode::Insert),
            0x03 => Some(Opcode::Remove),
            0x04 => Some(Opcode::Compact),
            0x05 => Some(Opcode::Metrics),
            0x06 => Some(Opcode::Health),
            0x07 => Some(Opcode::OplogSubscribe),
            _ => None,
        }
    }
}

/// Why a frame or payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The underlying transport failed (kind preserved; a timeout surfaces
    /// as `WouldBlock`/`TimedOut` depending on platform).
    Io(std::io::ErrorKind),
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// First four bytes are not [`MAGIC`] — not our protocol; hang up.
    BadMagic(u32),
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    PayloadTooLarge(u32),
    /// Payload ended before the declared structure was complete.
    Truncated,
    /// Structurally invalid payload (bad enum tag, non-UTF-8 string,
    /// element count inconsistent with remaining bytes, ...).
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(kind) => write!(f, "transport error: {kind:?}"),
            WireError::Closed => write!(f, "connection closed"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            WireError::PayloadTooLarge(n) => write!(f, "payload of {n} bytes exceeds cap"),
            WireError::Truncated => write!(f, "payload truncated"),
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Closed
        } else {
            WireError::Io(e.kind())
        }
    }
}

/// A decoded frame header plus its raw payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Operation selector.
    pub opcode: Opcode,
    /// [`flags`] bits.
    pub flags: u16,
    /// Correlates responses with requests on a multiplexed connection.
    pub request_id: u64,
    /// Opcode-specific payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// True when the RESPONSE flag is set.
    pub fn is_response(&self) -> bool {
        self.flags & flags::RESPONSE != 0
    }

    /// True when the ERROR flag is set.
    pub fn is_error(&self) -> bool {
        self.flags & flags::ERROR != 0
    }

    /// True when the DEGRADED flag is set.
    pub fn is_degraded(&self) -> bool {
        self.flags & flags::DEGRADED != 0
    }
}

/// Serialize `frame` into `out` (header + payload).
pub fn encode_frame(frame: &Frame, out: &mut Vec<u8>) {
    out.reserve(HEADER_LEN + frame.payload.len());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(WIRE_VERSION);
    out.push(frame.opcode as u8);
    out.extend_from_slice(&frame.flags.to_le_bytes());
    out.extend_from_slice(&frame.request_id.to_le_bytes());
    out.extend_from_slice(&(frame.payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&frame.payload);
}

/// Write one frame to a stream.
///
/// # Errors
/// Propagates transport errors.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> std::io::Result<()> {
    let mut buf = Vec::new();
    encode_frame(frame, &mut buf);
    w.write_all(&buf)?;
    w.flush()
}

/// Read exactly one frame from a stream.
///
/// # Errors
/// [`WireError::Closed`] on clean EOF at a frame boundary; other
/// [`WireError`] variants for transport failures and protocol violations.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, WireError> {
    let mut header = [0u8; HEADER_LEN];
    // Distinguish clean close (zero bytes at a frame boundary) from a
    // truncated header.
    let mut got = 0;
    while got < HEADER_LEN {
        match r.read(&mut header[got..]) {
            Ok(0) => {
                return Err(if got == 0 {
                    WireError::Closed
                } else {
                    WireError::Truncated
                });
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let (opcode, frame_flags, request_id, payload_len) = decode_header(&header)?;
    let mut payload = vec![0u8; payload_len as usize];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e.kind())
        }
    })?;
    Ok(Frame {
        opcode,
        flags: frame_flags,
        request_id,
        payload,
    })
}

/// Decode one frame from a byte slice, returning it and the bytes
/// consumed. This is the entry point the fuzz corpus drives.
///
/// # Errors
/// Any [`WireError`] protocol violation; never panics on any input.
pub fn decode_frame(bytes: &[u8]) -> Result<(Frame, usize), WireError> {
    if bytes.len() < HEADER_LEN {
        return Err(WireError::Truncated);
    }
    let mut header = [0u8; HEADER_LEN];
    header.copy_from_slice(&bytes[..HEADER_LEN]);
    let (opcode, frame_flags, request_id, payload_len) = decode_header(&header)?;
    let total = HEADER_LEN + payload_len as usize;
    if bytes.len() < total {
        return Err(WireError::Truncated);
    }
    Ok((
        Frame {
            opcode,
            flags: frame_flags,
            request_id,
            payload: bytes[HEADER_LEN..total].to_vec(),
        },
        total,
    ))
}

fn decode_header(header: &[u8; HEADER_LEN]) -> Result<(Opcode, u16, u64, u32), WireError> {
    let magic = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    if header[4] != WIRE_VERSION {
        return Err(WireError::BadVersion(header[4]));
    }
    let opcode = Opcode::from_u8(header[5]).ok_or(WireError::BadOpcode(header[5]))?;
    let frame_flags = u16::from_le_bytes([header[6], header[7]]);
    let mut id = [0u8; 8];
    id.copy_from_slice(&header[8..16]);
    let request_id = u64::from_le_bytes(id);
    let payload_len = u32::from_le_bytes([header[16], header[17], header[18], header[19]]);
    if payload_len > MAX_PAYLOAD {
        return Err(WireError::PayloadTooLarge(payload_len));
    }
    Ok((opcode, frame_flags, request_id, payload_len))
}

// ---------------------------------------------------------------------------
// Payload cursor: total reads, never panics.

/// Bounds-checked little-endian reader over a payload slice.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        let s = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let s = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()?;
        if len > MAX_STRING {
            return Err(WireError::Malformed("string length exceeds cap"));
        }
        let bytes = self.take(len as usize)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed("non-UTF-8 string"))
    }

    /// A declared element count is plausible only if `count * min_elem`
    /// bytes can still follow; rejects hostile counts before allocating.
    fn count(&mut self, min_elem: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        let remaining = self.buf.len().saturating_sub(self.pos);
        if n.saturating_mul(min_elem.max(1)) > remaining {
            return Err(WireError::Malformed("element count exceeds payload"));
        }
        Ok(n)
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes after payload"))
        }
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn match_type_to_u8(mt: MatchType) -> u8 {
    match mt {
        MatchType::Broad => 0,
        MatchType::Exact => 1,
        MatchType::Phrase => 2,
    }
}

fn match_type_from_u8(b: u8) -> Result<MatchType, WireError> {
    match b {
        0 => Ok(MatchType::Broad),
        1 => Ok(MatchType::Exact),
        2 => Ok(MatchType::Phrase),
        _ => Err(WireError::Malformed("bad match type")),
    }
}

// ---------------------------------------------------------------------------
// Requests.

/// A decoded request payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Run a query.
    Query {
        /// Raw query text.
        text: String,
        /// Matching semantics.
        match_type: MatchType,
    },
    /// Insert an ad.
    Insert {
        /// Bid phrase.
        phrase: String,
        /// Ad metadata.
        info: AdInfo,
    },
    /// Remove by exact phrase + listing id.
    Remove {
        /// Bid phrase.
        phrase: String,
        /// Listing to remove.
        listing_id: u64,
    },
    /// Fold the overlay now.
    Compact,
    /// Prometheus text exposition dump.
    Metrics,
    /// Liveness and replication positions.
    Health,
    /// Op-log batch from `from_seq` (exclusive start: the first op
    /// returned has sequence `from_seq + 1`).
    OplogSubscribe {
        /// Ops with sequence `> from_seq` are returned.
        from_seq: u64,
        /// At most this many ops in one batch.
        max_ops: u32,
    },
}

impl Request {
    /// The opcode this request travels under.
    pub fn opcode(&self) -> Opcode {
        match self {
            Request::Query { .. } => Opcode::Query,
            Request::Insert { .. } => Opcode::Insert,
            Request::Remove { .. } => Opcode::Remove,
            Request::Compact => Opcode::Compact,
            Request::Metrics => Opcode::Metrics,
            Request::Health => Opcode::Health,
            Request::OplogSubscribe { .. } => Opcode::OplogSubscribe,
        }
    }

    /// Encode into a request frame.
    pub fn to_frame(&self, request_id: u64) -> Frame {
        let mut payload = Vec::new();
        match self {
            Request::Query { text, match_type } => {
                payload.push(match_type_to_u8(*match_type));
                put_string(&mut payload, text);
            }
            Request::Insert { phrase, info } => {
                put_u64(&mut payload, info.listing_id);
                put_u32(&mut payload, info.campaign_id);
                put_u64(&mut payload, info.bid_micros);
                put_string(&mut payload, phrase);
            }
            Request::Remove { phrase, listing_id } => {
                put_u64(&mut payload, *listing_id);
                put_string(&mut payload, phrase);
            }
            Request::Compact | Request::Metrics | Request::Health => {}
            Request::OplogSubscribe { from_seq, max_ops } => {
                put_u64(&mut payload, *from_seq);
                put_u32(&mut payload, *max_ops);
            }
        }
        Frame {
            opcode: self.opcode(),
            flags: 0,
            request_id,
            payload,
        }
    }

    /// Decode a request from a frame.
    ///
    /// # Errors
    /// [`WireError::Malformed`]/[`WireError::Truncated`] on any payload
    /// that does not exactly match the opcode's schema.
    pub fn from_frame(frame: &Frame) -> Result<Request, WireError> {
        if frame.is_response() {
            return Err(WireError::Malformed("response flag on a request"));
        }
        let mut c = Cursor::new(&frame.payload);
        let req = match frame.opcode {
            Opcode::Query => {
                let match_type = match_type_from_u8(c.u8()?)?;
                let text = c.string()?;
                Request::Query { text, match_type }
            }
            Opcode::Insert => {
                let listing_id = c.u64()?;
                let campaign_id = c.u32()?;
                let bid_micros = c.u64()?;
                let phrase = c.string()?;
                Request::Insert {
                    phrase,
                    info: AdInfo {
                        listing_id,
                        campaign_id,
                        bid_micros,
                    },
                }
            }
            Opcode::Remove => {
                let listing_id = c.u64()?;
                let phrase = c.string()?;
                Request::Remove { phrase, listing_id }
            }
            Opcode::Compact => Request::Compact,
            Opcode::Metrics => Request::Metrics,
            Opcode::Health => Request::Health,
            Opcode::OplogSubscribe => {
                let from_seq = c.u64()?;
                let max_ops = c.u32()?;
                Request::OplogSubscribe { from_seq, max_ops }
            }
        };
        c.finish()?;
        Ok(req)
    }
}

// ---------------------------------------------------------------------------
// Replicated operations (the PR-3 op log on the wire).

/// One replicated mutation, as shipped primary → replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepOp {
    /// An overlay insert.
    Insert {
        /// Bid phrase.
        phrase: String,
        /// Ad metadata.
        info: AdInfo,
    },
    /// A query-shaped delete.
    Remove {
        /// Bid phrase.
        phrase: String,
        /// Listing to remove.
        listing_id: u64,
    },
}

/// Minimum encoded size of a [`RepOp`] (tag + listing + empty phrase).
const REP_OP_MIN: usize = 1 + 8 + 4;

fn put_rep_op(out: &mut Vec<u8>, op: &RepOp) {
    match op {
        RepOp::Insert { phrase, info } => {
            out.push(1);
            put_u64(out, info.listing_id);
            put_u32(out, info.campaign_id);
            put_u64(out, info.bid_micros);
            put_string(out, phrase);
        }
        RepOp::Remove { phrase, listing_id } => {
            out.push(2);
            put_u64(out, *listing_id);
            put_string(out, phrase);
        }
    }
}

fn get_rep_op(c: &mut Cursor<'_>) -> Result<RepOp, WireError> {
    match c.u8()? {
        1 => {
            let listing_id = c.u64()?;
            let campaign_id = c.u32()?;
            let bid_micros = c.u64()?;
            let phrase = c.string()?;
            Ok(RepOp::Insert {
                phrase,
                info: AdInfo {
                    listing_id,
                    campaign_id,
                    bid_micros,
                },
            })
        }
        2 => {
            let listing_id = c.u64()?;
            let phrase = c.string()?;
            Ok(RepOp::Remove { phrase, listing_id })
        }
        _ => Err(WireError::Malformed("bad op tag")),
    }
}

// ---------------------------------------------------------------------------
// Responses.

/// Machine-readable failure category in an [`ErrorReply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Admission control refused the query; honor `retry_after_micros`.
    Overloaded,
    /// The backend is shutting down.
    ShuttingDown,
    /// The request failed validation (bad phrase, malformed payload).
    BadRequest,
    /// Unexpected server-side failure.
    Internal,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::Overloaded => 1,
            ErrorCode::ShuttingDown => 2,
            ErrorCode::BadRequest => 3,
            ErrorCode::Internal => 4,
        }
    }

    fn from_u8(b: u8) -> Result<ErrorCode, WireError> {
        match b {
            1 => Ok(ErrorCode::Overloaded),
            2 => Ok(ErrorCode::ShuttingDown),
            3 => Ok(ErrorCode::BadRequest),
            4 => Ok(ErrorCode::Internal),
            _ => Err(WireError::Malformed("bad error code")),
        }
    }
}

/// An error response payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorReply {
    /// Failure category.
    pub code: ErrorCode,
    /// Backoff hint for [`ErrorCode::Overloaded`] (0 otherwise).
    pub retry_after_micros: u64,
    /// Human-readable detail.
    pub detail: String,
}

/// A query response payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryReply {
    /// Matching ads.
    pub hits: Vec<MatchHit>,
    /// Processing statistics (summed across shards by the router).
    pub stats: QueryStats,
    /// Snapshot version that served the query.
    pub version: u64,
}

/// A decoded (non-error) response payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Query results.
    Query(QueryReply),
    /// Insert acknowledged.
    Insert {
        /// Assigned ad id (dense, backend-local).
        ad: u32,
        /// Op-log sequence this mutation was logged at.
        seq: u64,
    },
    /// Remove acknowledged.
    Remove {
        /// Ads removed (0 = no-op, nothing logged).
        removed: u64,
        /// Op-log head after this mutation.
        seq: u64,
    },
    /// Compaction finished (`version == 0` means nothing to fold).
    Compact {
        /// New snapshot version, or 0 when the overlay was empty.
        version: u64,
    },
    /// Full Prometheus text exposition.
    Metrics {
        /// The exposition text.
        text: String,
    },
    /// Liveness + replication positions.
    Health {
        /// Published snapshot version.
        version: u64,
        /// Op-log head sequence.
        oplog_seq: u64,
        /// Base epoch of the published snapshot.
        base_epoch: u64,
    },
    /// Op-log batch.
    Oplog {
        /// Ops with sequence in `(from_seq, next_seq]`.
        ops: Vec<RepOp>,
        /// Sequence of the last op in `ops` (equals the request's
        /// `from_seq` when the batch is empty).
        next_seq: u64,
        /// The primary's op-log head — `head_seq - next_seq` is the
        /// replica's lag in ops.
        head_seq: u64,
        /// Base epoch the log is relative to.
        base_epoch: u64,
    },
    /// Failure.
    Error(ErrorReply),
}

/// Minimum encoded size of a [`MatchHit`].
const HIT_BYTES: usize = 4 + 8 + 4 + 8;

fn put_stats(out: &mut Vec<u8>, s: &QueryStats) {
    for v in [
        s.probes,
        s.probe_hits,
        s.nodes_visited,
        s.hits,
        s.entries_examined,
        s.ads_examined,
        s.scanned_bytes,
        s.early_terminations,
        s.remapped_nodes,
        s.remapped_scan_bytes,
        s.tombstone_hits,
        s.overlay_hits,
    ] {
        put_u64(out, v as u64);
    }
    out.push(u8::from(s.truncated));
}

fn get_stats(c: &mut Cursor<'_>) -> Result<QueryStats, WireError> {
    let mut v = [0u64; 12];
    for slot in &mut v {
        *slot = c.u64()?;
    }
    let truncated = match c.u8()? {
        0 => false,
        1 => true,
        _ => return Err(WireError::Malformed("bad truncated flag")),
    };
    Ok(QueryStats {
        probes: v[0] as usize,
        probe_hits: v[1] as usize,
        nodes_visited: v[2] as usize,
        hits: v[3] as usize,
        entries_examined: v[4] as usize,
        ads_examined: v[5] as usize,
        scanned_bytes: v[6] as usize,
        early_terminations: v[7] as usize,
        remapped_nodes: v[8] as usize,
        remapped_scan_bytes: v[9] as usize,
        tombstone_hits: v[10] as usize,
        overlay_hits: v[11] as usize,
        truncated,
    })
}

impl Response {
    /// The opcode this response travels under.
    pub fn opcode(&self) -> Opcode {
        match self {
            Response::Query(_) => Opcode::Query,
            Response::Insert { .. } => Opcode::Insert,
            Response::Remove { .. } => Opcode::Remove,
            Response::Compact { .. } => Opcode::Compact,
            Response::Metrics { .. } => Opcode::Metrics,
            Response::Health { .. } => Opcode::Health,
            Response::Oplog { .. } => Opcode::OplogSubscribe,
            // An error echoes the request's opcode; this is the fallback
            // when the caller builds one standalone.
            Response::Error(_) => Opcode::Health,
        }
    }

    /// Encode into a response frame for `opcode` (errors echo the
    /// request's opcode so callers can correlate by id + opcode).
    pub fn to_frame(&self, opcode: Opcode, request_id: u64) -> Frame {
        let mut payload = Vec::new();
        let mut frame_flags = flags::RESPONSE;
        match self {
            Response::Query(reply) => {
                put_u64(&mut payload, reply.version);
                put_stats(&mut payload, &reply.stats);
                put_u32(&mut payload, reply.hits.len() as u32);
                for h in &reply.hits {
                    put_u32(&mut payload, h.ad.raw());
                    put_u64(&mut payload, h.info.listing_id);
                    put_u32(&mut payload, h.info.campaign_id);
                    put_u64(&mut payload, h.info.bid_micros);
                }
            }
            Response::Insert { ad, seq } => {
                put_u32(&mut payload, *ad);
                put_u64(&mut payload, *seq);
            }
            Response::Remove { removed, seq } => {
                put_u64(&mut payload, *removed);
                put_u64(&mut payload, *seq);
            }
            Response::Compact { version } => {
                put_u64(&mut payload, *version);
            }
            Response::Metrics { text } => {
                put_string(&mut payload, text);
            }
            Response::Health {
                version,
                oplog_seq,
                base_epoch,
            } => {
                put_u64(&mut payload, *version);
                put_u64(&mut payload, *oplog_seq);
                put_u64(&mut payload, *base_epoch);
            }
            Response::Oplog {
                ops,
                next_seq,
                head_seq,
                base_epoch,
            } => {
                put_u64(&mut payload, *next_seq);
                put_u64(&mut payload, *head_seq);
                put_u64(&mut payload, *base_epoch);
                put_u32(&mut payload, ops.len() as u32);
                for op in ops {
                    put_rep_op(&mut payload, op);
                }
            }
            Response::Error(err) => {
                frame_flags |= flags::ERROR;
                payload.push(err.code.to_u8());
                put_u64(&mut payload, err.retry_after_micros);
                put_string(&mut payload, &err.detail);
            }
        }
        Frame {
            opcode,
            flags: frame_flags,
            request_id,
            payload,
        }
    }

    /// Decode a response from a frame (dispatching on opcode + flags).
    ///
    /// # Errors
    /// [`WireError`] on any payload that does not match the schema.
    pub fn from_frame(frame: &Frame) -> Result<Response, WireError> {
        if !frame.is_response() {
            return Err(WireError::Malformed("request flag on a response"));
        }
        let mut c = Cursor::new(&frame.payload);
        if frame.is_error() {
            let code = ErrorCode::from_u8(c.u8()?)?;
            let retry_after_micros = c.u64()?;
            let detail = c.string()?;
            c.finish()?;
            return Ok(Response::Error(ErrorReply {
                code,
                retry_after_micros,
                detail,
            }));
        }
        let resp = match frame.opcode {
            Opcode::Query => {
                let version = c.u64()?;
                let stats = get_stats(&mut c)?;
                let n = c.count(HIT_BYTES)?;
                let mut hits = Vec::with_capacity(n);
                for _ in 0..n {
                    let ad = AdId(c.u32()?);
                    let listing_id = c.u64()?;
                    let campaign_id = c.u32()?;
                    let bid_micros = c.u64()?;
                    hits.push(MatchHit {
                        ad,
                        info: AdInfo {
                            listing_id,
                            campaign_id,
                            bid_micros,
                        },
                    });
                }
                Response::Query(QueryReply {
                    hits,
                    stats,
                    version,
                })
            }
            Opcode::Insert => Response::Insert {
                ad: c.u32()?,
                seq: c.u64()?,
            },
            Opcode::Remove => Response::Remove {
                removed: c.u64()?,
                seq: c.u64()?,
            },
            Opcode::Compact => Response::Compact { version: c.u64()? },
            Opcode::Metrics => Response::Metrics { text: c.string()? },
            Opcode::Health => Response::Health {
                version: c.u64()?,
                oplog_seq: c.u64()?,
                base_epoch: c.u64()?,
            },
            Opcode::OplogSubscribe => {
                let next_seq = c.u64()?;
                let head_seq = c.u64()?;
                let base_epoch = c.u64()?;
                let n = c.count(REP_OP_MIN)?;
                let mut ops = Vec::with_capacity(n);
                for _ in 0..n {
                    ops.push(get_rep_op(&mut c)?);
                }
                Response::Oplog {
                    ops,
                    next_seq,
                    head_seq,
                    base_epoch,
                }
            }
        };
        c.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let frame = req.to_frame(42);
        let mut bytes = Vec::new();
        encode_frame(&frame, &mut bytes);
        let (decoded, used) = decode_frame(&bytes).expect("decodes");
        assert_eq!(used, bytes.len());
        assert_eq!(decoded, frame);
        assert_eq!(Request::from_frame(&decoded).expect("parses"), req);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Query {
            text: "cheap used books".into(),
            match_type: MatchType::Broad,
        });
        round_trip_request(Request::Query {
            text: String::new(),
            match_type: MatchType::Phrase,
        });
        round_trip_request(Request::Insert {
            phrase: "quantum books".into(),
            info: AdInfo {
                listing_id: 7,
                campaign_id: 3,
                bid_micros: 120_000,
            },
        });
        round_trip_request(Request::Remove {
            phrase: "used books".into(),
            listing_id: 1,
        });
        round_trip_request(Request::Compact);
        round_trip_request(Request::Metrics);
        round_trip_request(Request::Health);
        round_trip_request(Request::OplogSubscribe {
            from_seq: 99,
            max_ops: 512,
        });
    }

    fn round_trip_response(resp: Response, opcode: Opcode) {
        let frame = resp.to_frame(opcode, 7);
        let mut bytes = Vec::new();
        encode_frame(&frame, &mut bytes);
        let (decoded, used) = decode_frame(&bytes).expect("decodes");
        assert_eq!(used, bytes.len());
        assert_eq!(Response::from_frame(&decoded).expect("parses"), resp);
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(
            Response::Query(QueryReply {
                hits: vec![
                    MatchHit {
                        ad: AdId(3),
                        info: AdInfo::with_bid(9, 25),
                    },
                    MatchHit {
                        ad: AdId(0),
                        info: AdInfo {
                            listing_id: u64::MAX,
                            campaign_id: u32::MAX,
                            bid_micros: u64::MAX,
                        },
                    },
                ],
                stats: QueryStats {
                    probes: 15,
                    probe_hits: 3,
                    nodes_visited: 2,
                    truncated: true,
                    hits: 2,
                    entries_examined: 40,
                    ads_examined: 17,
                    scanned_bytes: 512,
                    early_terminations: 1,
                    remapped_nodes: 1,
                    remapped_scan_bytes: 64,
                    tombstone_hits: 1,
                    overlay_hits: 1,
                },
                version: 12,
            }),
            Opcode::Query,
        );
        round_trip_response(Response::Insert { ad: 4, seq: 17 }, Opcode::Insert);
        round_trip_response(
            Response::Remove {
                removed: 2,
                seq: 18,
            },
            Opcode::Remove,
        );
        round_trip_response(Response::Compact { version: 0 }, Opcode::Compact);
        round_trip_response(
            Response::Metrics {
                text: "# HELP x y\nx 1\n".into(),
            },
            Opcode::Metrics,
        );
        round_trip_response(
            Response::Health {
                version: 3,
                oplog_seq: 44,
                base_epoch: 2,
            },
            Opcode::Health,
        );
        round_trip_response(
            Response::Oplog {
                ops: vec![
                    RepOp::Insert {
                        phrase: "a b".into(),
                        info: AdInfo::with_bid(1, 5),
                    },
                    RepOp::Remove {
                        phrase: "a b".into(),
                        listing_id: 1,
                    },
                ],
                next_seq: 2,
                head_seq: 9,
                base_epoch: 1,
            },
            Opcode::OplogSubscribe,
        );
        round_trip_response(
            Response::Error(ErrorReply {
                code: ErrorCode::Overloaded,
                retry_after_micros: 1500,
                detail: "shard 2 queue full".into(),
            }),
            Opcode::Query,
        );
    }

    #[test]
    fn header_violations_are_rejected() {
        let frame = Request::Health.to_frame(1);
        let mut bytes = Vec::new();
        encode_frame(&frame, &mut bytes);

        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(decode_frame(&bad), Err(WireError::BadMagic(_))));

        let mut bad = bytes.clone();
        bad[4] = 99;
        assert_eq!(decode_frame(&bad), Err(WireError::BadVersion(99)));

        let mut bad = bytes.clone();
        bad[5] = 0xEE;
        assert_eq!(decode_frame(&bad), Err(WireError::BadOpcode(0xEE)));

        let mut bad = bytes.clone();
        bad[16..20].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert_eq!(
            decode_frame(&bad),
            Err(WireError::PayloadTooLarge(MAX_PAYLOAD + 1))
        );

        assert_eq!(decode_frame(&bytes[..10]), Err(WireError::Truncated));
    }

    #[test]
    fn hostile_counts_do_not_allocate() {
        // A query response declaring u32::MAX hits in a 40-byte payload
        // must be rejected by the plausibility check, not attempted.
        let reply = Response::Query(QueryReply {
            hits: Vec::new(),
            stats: QueryStats::default(),
            version: 1,
        });
        let mut frame = reply.to_frame(Opcode::Query, 1);
        let len = frame.payload.len();
        frame.payload[len - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            Response::from_frame(&frame),
            Err(WireError::Malformed("element count exceeds payload"))
        );
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut frame = Request::Health.to_frame(1);
        frame.payload.push(0);
        assert_eq!(
            Request::from_frame(&frame),
            Err(WireError::Malformed("trailing bytes after payload"))
        );
    }

    #[test]
    fn stream_read_distinguishes_close_from_truncation() {
        let frame = Request::Metrics.to_frame(5);
        let mut bytes = Vec::new();
        encode_frame(&frame, &mut bytes);

        let mut cursor = std::io::Cursor::new(bytes.clone());
        assert_eq!(read_frame(&mut cursor).expect("full frame"), frame);
        assert_eq!(read_frame(&mut cursor), Err(WireError::Closed));

        let mut cut = std::io::Cursor::new(bytes[..HEADER_LEN - 3].to_vec());
        assert_eq!(read_frame(&mut cut), Err(WireError::Truncated));
    }
}
