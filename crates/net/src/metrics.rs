//! The `net_*` telemetry families.
//!
//! Backends register into the *embedded runtime's* registry, so one
//! `Metrics` frame (or `ServeRuntime::prometheus`) exposes the serve and
//! net families together. The router keeps its own registry (it has no
//! runtime) with per-backend latency histograms in the same 5 ms netsim
//! bucket geometry as `serve_query_latency_ms` — measured cluster
//! latencies feed straight into the capacity-model comparison.

use std::sync::Arc;

use broadmatch_telemetry::{Counter, Gauge, Histogram, Registry};

/// Pre-registered handles for a backend server.
#[derive(Debug)]
pub struct NetMetrics {
    /// Connections accepted over the server's lifetime.
    pub connections_total: Arc<Counter>,
    /// Connections currently open.
    pub connections_active: Arc<Gauge>,
    /// Connections refused because the accept budget was exhausted.
    pub connections_refused_total: Arc<Counter>,
    /// Frames decoded off the wire.
    pub frames_in_total: Arc<Counter>,
    /// Frames written to the wire.
    pub frames_out_total: Arc<Counter>,
    /// Frames that failed to decode (bad magic/version/opcode/payload).
    pub decode_errors_total: Arc<Counter>,
    /// Error responses sent (admission rejects, bad requests, ...).
    pub errors_out_total: Arc<Counter>,
}

impl NetMetrics {
    /// Register the backend families in `registry`.
    pub fn register(registry: &Registry) -> NetMetrics {
        NetMetrics {
            connections_total: registry.counter(
                "net_connections_total",
                "Connections accepted over the server's lifetime",
                &[],
            ),
            connections_active: registry.gauge(
                "net_connections_active",
                "Connections currently open",
                &[],
            ),
            connections_refused_total: registry.counter(
                "net_connections_refused_total",
                "Connections refused by the accept budget",
                &[],
            ),
            frames_in_total: registry.counter(
                "net_frames_in_total",
                "Frames decoded off the wire",
                &[],
            ),
            frames_out_total: registry.counter(
                "net_frames_out_total",
                "Frames written to the wire",
                &[],
            ),
            decode_errors_total: registry.counter(
                "net_decode_errors_total",
                "Frames that failed to decode",
                &[],
            ),
            errors_out_total: registry.counter("net_errors_out_total", "Error responses sent", &[]),
        }
    }
}

/// Pre-registered handles for the scatter-gather router.
#[derive(Debug)]
pub struct RouterMetrics {
    /// Queries routed.
    pub requests_total: Arc<Counter>,
    /// Per-backend requests that hit their deadline.
    pub timeouts_total: Arc<Counter>,
    /// Hedged retries dispatched after the hedge threshold.
    pub hedges_total: Arc<Counter>,
    /// Responses returned with the degraded flag set.
    pub degraded_total: Arc<Counter>,
    /// End-to-end routed query latency (netsim bucket geometry).
    pub query_latency: Arc<Histogram>,
    /// Per-backend round-trip latency (netsim bucket geometry).
    pub backend_latency: Vec<Arc<Histogram>>,
    /// Per-backend failures (connect/transport/decode, not overload).
    pub backend_failures: Vec<Arc<Counter>>,
}

impl RouterMetrics {
    /// Register the router families in `registry` for `n_backends`.
    pub fn register(registry: &Registry, n_backends: usize) -> RouterMetrics {
        let mut backend_latency = Vec::with_capacity(n_backends);
        let mut backend_failures = Vec::with_capacity(n_backends);
        for b in 0..n_backends {
            let label = b.to_string();
            backend_latency.push(registry.histogram(
                "net_backend_latency_ms",
                "Per-backend round-trip latency",
                &[("backend", &label)],
            ));
            backend_failures.push(registry.counter(
                "net_backend_failures_total",
                "Per-backend connect/transport/decode failures",
                &[("backend", &label)],
            ));
        }
        RouterMetrics {
            requests_total: registry.counter("net_router_requests_total", "Queries routed", &[]),
            timeouts_total: registry.counter(
                "net_router_timeouts_total",
                "Per-backend requests that hit their deadline",
                &[],
            ),
            hedges_total: registry.counter(
                "net_router_hedges_total",
                "Hedged retries dispatched",
                &[],
            ),
            degraded_total: registry.counter(
                "net_router_degraded_total",
                "Responses returned degraded",
                &[],
            ),
            query_latency: registry.histogram(
                "net_router_query_latency_ms",
                "End-to-end routed query latency",
                &[],
            ),
            backend_latency,
            backend_failures,
        }
    }
}

/// Pre-registered handles for a replica syncer.
#[derive(Debug)]
pub struct ReplicaMetrics {
    /// Op-log entries applied locally.
    pub ops_applied_total: Arc<Counter>,
    /// Ops behind the primary's head at the last poll.
    pub lag_ops: Arc<Gauge>,
    /// Times the subscription connection was re-established.
    pub reconnects_total: Arc<Counter>,
}

impl ReplicaMetrics {
    /// Register the replica families in `registry`.
    pub fn register(registry: &Registry) -> ReplicaMetrics {
        ReplicaMetrics {
            ops_applied_total: registry.counter(
                "net_replica_ops_applied_total",
                "Op-log entries applied locally",
                &[],
            ),
            lag_ops: registry.gauge(
                "net_replica_lag_ops",
                "Ops behind the primary's head at the last poll",
                &[],
            ),
            reconnects_total: registry.counter(
                "net_replica_reconnects_total",
                "Times the subscription connection was re-established",
                &[],
            ),
        }
    }
}
