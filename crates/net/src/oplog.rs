//! The primary's replication log.
//!
//! [`OpLog`] records every *effective* mutation (inserts, and removes
//! that actually removed something) in commit order, alongside the base
//! epoch the log is relative to. Replicas poll
//! [`OpLog::since`] through the `OplogSubscribe` wire op and replay the
//! ops against their own runtime; because the serve layer's delta
//! overlay applies ops deterministically, a replica that has applied the
//! same prefix over the same base answers queries identically to the
//! primary (asserted bit-for-bit in `tests/partition.rs`).
//!
//! Sequence numbers are 1-based positions in the log: `since(0)` streams
//! from the beginning, and `head_seq()` equals the number of ops logged.
//! The log is append-only for the life of the server — simple, and
//! bounded in practice by compaction cadence; a production system would
//! truncate below the minimum replica watermark.

use broadmatch_serve::poison;
use std::sync::Mutex;

use crate::wire::RepOp;

/// An append-only, thread-safe log of replicated mutations.
#[derive(Debug, Default)]
pub struct OpLog {
    inner: Mutex<Vec<RepOp>>,
}

impl OpLog {
    /// An empty log.
    pub fn new() -> OpLog {
        OpLog::default()
    }

    /// Append one op, returning its sequence number (1-based).
    pub fn append(&self, op: RepOp) -> u64 {
        let mut log = poison::lock(&self.inner);
        log.push(op);
        log.len() as u64
    }

    /// Sequence of the newest op (0 when empty).
    pub fn head_seq(&self) -> u64 {
        poison::lock(&self.inner).len() as u64
    }

    /// Up to `max_ops` ops with sequence `> from_seq`, plus the sequence
    /// of the last op returned and the current head.
    pub fn since(&self, from_seq: u64, max_ops: u32) -> (Vec<RepOp>, u64, u64) {
        let log = poison::lock(&self.inner);
        let head = log.len() as u64;
        let start = (from_seq as usize).min(log.len());
        let end = start.saturating_add(max_ops as usize).min(log.len());
        let ops = log[start..end].to_vec();
        (ops, end as u64, head)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use broadmatch::AdInfo;

    fn ins(n: u64) -> RepOp {
        RepOp::Insert {
            phrase: format!("phrase {n}"),
            info: AdInfo::with_bid(n, 10),
        }
    }

    #[test]
    fn since_pages_through_in_order() {
        let log = OpLog::new();
        for n in 0..5 {
            assert_eq!(log.append(ins(n)), n + 1);
        }
        assert_eq!(log.head_seq(), 5);

        let (ops, next, head) = log.since(0, 2);
        assert_eq!((ops.len(), next, head), (2, 2, 5));
        assert_eq!(ops[0], ins(0));

        let (ops, next, head) = log.since(next, 100);
        assert_eq!((ops.len(), next, head), (3, 5, 5));
        assert_eq!(ops[2], ins(4));

        let (ops, next, head) = log.since(5, 100);
        assert!(ops.is_empty());
        assert_eq!((next, head), (5, 5));

        // A stale or hostile from_seq past the head clamps safely.
        let (ops, next, head) = log.since(999, 100);
        assert!(ops.is_empty());
        assert_eq!((next, head), (5, 5));
    }
}
