//! A small hardware simulator standing in for the VTune counters of Section
//! VII-C.
//!
//! The paper explains the throughput gap between the re-mapped and
//! non-re-mapped structures with four hardware performance counters: DTLB
//! misses, page-walk cycles, L2 cache misses, and branch mispredictions.
//! We cannot collect those portably, so [`HwSimTracker`] replays the *actual*
//! address stream an index produces through textbook models:
//!
//! * two levels of set-associative, LRU data cache (L1/L2);
//! * a fully-associative LRU DTLB with a fixed page-walk cost per miss;
//! * a table of two-bit saturating counters for branch prediction.
//!
//! Only the *relative* movement of the counters between two layouts under the
//! same probe pattern is meaningful, which is exactly how the paper uses
//! them.

use crate::tracker::AccessTracker;

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Total capacity in bytes. Must be a multiple of `line_bytes * associativity`.
    pub size_bytes: usize,
    /// Cache-line size in bytes (power of two).
    pub line_bytes: usize,
    /// Number of ways per set.
    pub associativity: usize,
}

impl CacheConfig {
    /// 32 KiB, 64-byte lines, 8-way — a typical L1D.
    pub fn l1d() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024,
            line_bytes: 64,
            associativity: 8,
        }
    }

    /// 4 MiB, 64-byte lines, 16-way — the shared L2 of the paper's era Xeon.
    pub fn l2() -> Self {
        CacheConfig {
            size_bytes: 4 * 1024 * 1024,
            line_bytes: 64,
            associativity: 16,
        }
    }
}

/// A set-associative LRU cache over 64-bit line addresses.
#[derive(Debug, Clone)]
pub struct Cache {
    line_shift: u32,
    set_mask: u64,
    assoc: usize,
    /// `sets * assoc` tags; `u64::MAX` marks an empty way.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Build a cache with the given geometry.
    ///
    /// # Panics
    /// Panics if `line_bytes` is not a power of two or the geometry does not
    /// divide evenly into sets.
    pub fn new(config: CacheConfig) -> Self {
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(config.associativity >= 1);
        let lines = config.size_bytes / config.line_bytes;
        assert!(
            lines.is_multiple_of(config.associativity) && lines > 0,
            "cache size must divide into sets"
        );
        let sets = lines / config.associativity;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: (sets - 1) as u64,
            assoc: config.associativity,
            tags: vec![u64::MAX; lines],
            stamps: vec![0; lines],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Access the line containing byte address `addr`. Returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let base = set * self.assoc;
        self.tick += 1;
        let ways = &mut self.tags[base..base + self.assoc];
        if let Some(i) = ways.iter().position(|&t| t == line) {
            self.stamps[base + i] = self.tick;
            self.hits += 1;
            return true;
        }
        // Miss: evict the LRU way.
        let victim = (0..self.assoc)
            .min_by_key(|&i| self.stamps[base + i])
            .expect("associativity >= 1");
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.tick;
        self.misses += 1;
        false
    }

    /// Number of hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Cache-line size in bytes.
    pub fn line_bytes(&self) -> usize {
        1 << self.line_shift
    }
}

/// Geometry of the simulated DTLB.
#[derive(Debug, Clone, Copy)]
pub struct TlbConfig {
    /// Number of entries (fully associative).
    pub entries: usize,
    /// Page size in bytes (power of two).
    pub page_bytes: usize,
    /// Cycles charged per page walk on a miss.
    pub walk_cycles: u64,
}

impl TlbConfig {
    /// 64 entries over 4 KiB pages, 30-cycle walks — a period-typical DTLB.
    pub fn typical() -> Self {
        TlbConfig {
            entries: 64,
            page_bytes: 4096,
            walk_cycles: 30,
        }
    }
}

/// A fully-associative LRU translation lookaside buffer.
#[derive(Debug, Clone)]
pub struct Tlb {
    page_shift: u32,
    entries: Vec<u64>,
    stamps: Vec<u64>,
    walk_cycles: u64,
    tick: u64,
    hits: u64,
    misses: u64,
    walk_cycles_total: u64,
}

impl Tlb {
    /// Build a TLB with the given geometry.
    pub fn new(config: TlbConfig) -> Self {
        assert!(config.page_bytes.is_power_of_two());
        assert!(config.entries >= 1);
        Tlb {
            page_shift: config.page_bytes.trailing_zeros(),
            entries: vec![u64::MAX; config.entries],
            stamps: vec![0; config.entries],
            walk_cycles: config.walk_cycles,
            tick: 0,
            hits: 0,
            misses: 0,
            walk_cycles_total: 0,
        }
    }

    /// Access the page containing `addr`. Returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let page = addr >> self.page_shift;
        self.tick += 1;
        if let Some(i) = self.entries.iter().position(|&p| p == page) {
            self.stamps[i] = self.tick;
            self.hits += 1;
            return true;
        }
        let victim = (0..self.entries.len())
            .min_by_key(|&i| self.stamps[i])
            .expect("entries >= 1");
        self.entries[victim] = page;
        self.stamps[victim] = self.tick;
        self.misses += 1;
        self.walk_cycles_total += self.walk_cycles;
        false
    }

    /// Number of DTLB misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total cycles spent on simulated page walks.
    pub fn walk_cycles_total(&self) -> u64 {
        self.walk_cycles_total
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> usize {
        1 << self.page_shift
    }
}

/// A table of two-bit saturating counters indexed by a hash of the branch
/// site id (the classic bimodal predictor), with per-site statistics.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    counters: Vec<u8>,
    predictions: u64,
    mispredictions: u64,
    /// Per-site `(predictions, mispredictions)`.
    per_site: std::collections::HashMap<u32, (u64, u64)>,
}

impl BranchPredictor {
    /// Build a predictor with `slots` counters (rounded up to a power of two).
    pub fn new(slots: usize) -> Self {
        BranchPredictor {
            counters: vec![1u8; slots.next_power_of_two().max(16)],
            predictions: 0,
            mispredictions: 0,
            per_site: std::collections::HashMap::new(),
        }
    }

    /// Record the outcome of branch `site`; returns `true` if the predictor
    /// had guessed right.
    pub fn record(&mut self, site: u32, taken: bool) -> bool {
        // Fibonacci hashing spreads consecutive site ids across the table.
        let idx = ((site as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48) as usize
            & (self.counters.len() - 1);
        let c = &mut self.counters[idx];
        let predicted_taken = *c >= 2;
        self.predictions += 1;
        let correct = predicted_taken == taken;
        let entry = self.per_site.entry(site).or_insert((0, 0));
        entry.0 += 1;
        if !correct {
            self.mispredictions += 1;
            entry.1 += 1;
        }
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        correct
    }

    /// Branches observed.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Branches mispredicted.
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// `(predictions, mispredictions)` for one branch site.
    pub fn site_stats(&self, site: u32) -> (u64, u64) {
        self.per_site.get(&site).copied().unwrap_or((0, 0))
    }
}

/// Configuration for the full simulator.
#[derive(Debug, Clone, Copy)]
pub struct HwSimConfig {
    /// L1 data cache geometry.
    pub l1: CacheConfig,
    /// L2 cache geometry.
    pub l2: CacheConfig,
    /// DTLB geometry.
    pub tlb: TlbConfig,
    /// Branch-predictor table size.
    pub branch_slots: usize,
}

impl Default for HwSimConfig {
    fn default() -> Self {
        HwSimConfig {
            l1: CacheConfig::l1d(),
            l2: CacheConfig::l2(),
            tlb: TlbConfig::typical(),
            branch_slots: 4096,
        }
    }
}

/// Snapshot of simulated hardware counters, mirroring the four VTune counters
/// the paper reports in Section VII-C.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HwCounters {
    /// Memory accesses simulated (cache-line touches).
    pub accesses: u64,
    /// L1D misses.
    pub l1_misses: u64,
    /// L2 misses (≈ trips to DRAM).
    pub l2_misses: u64,
    /// DTLB misses ("number of main memory accesses that missed the DTLB").
    pub dtlb_misses: u64,
    /// Cycles spent on page walks ("fraction of unhalted core cycles spent on
    /// the page walks resulting from these misses").
    pub page_walk_cycles: u64,
    /// Conditional branches observed.
    pub branches: u64,
    /// Branch mispredictions.
    pub branch_mispredictions: u64,
}

impl HwCounters {
    /// Percentage change of `f(self)` relative to `f(base)`; the form the
    /// paper reports ("increase of more than 40%").
    pub fn pct_change(base: u64, new: u64) -> f64 {
        if base == 0 {
            return 0.0;
        }
        (new as f64 - base as f64) / base as f64 * 100.0
    }
}

/// An [`AccessTracker`] that feeds every reported access through the cache,
/// TLB and branch models.
///
/// # Examples
///
/// ```
/// use broadmatch_memcost::{AccessTracker, HwSimTracker};
///
/// let mut hw = HwSimTracker::default();
/// // A scattered pointer chase touches many pages...
/// for i in 0..1000u64 {
///     hw.random_access(i * 4096 * 17, 8);
/// }
/// let scattered = hw.counters();
/// assert!(scattered.dtlb_misses > 900);
///
/// // ...while a sequential scan of the same volume stays within a few pages.
/// let mut hw = HwSimTracker::default();
/// for i in 0..1000u64 {
///     hw.sequential_read(i * 8, 8);
/// }
/// assert!(hw.counters().dtlb_misses < 10);
/// ```
#[derive(Debug, Clone)]
pub struct HwSimTracker {
    l1: Cache,
    l2: Cache,
    tlb: Tlb,
    branches: BranchPredictor,
    accesses: u64,
}

impl Default for HwSimTracker {
    fn default() -> Self {
        Self::new(HwSimConfig::default())
    }
}

impl HwSimTracker {
    /// Build a simulator from `config`.
    pub fn new(config: HwSimConfig) -> Self {
        HwSimTracker {
            l1: Cache::new(config.l1),
            l2: Cache::new(config.l2),
            tlb: Tlb::new(config.tlb),
            branches: BranchPredictor::new(config.branch_slots),
            accesses: 0,
        }
    }

    fn touch_range(&mut self, addr: u64, bytes: usize) {
        let bytes = bytes.max(1) as u64;
        let line = self.l1.line_bytes() as u64;
        let page = self.tlb.page_bytes() as u64;
        let mut a = addr & !(line - 1);
        let end = addr + bytes;
        while a < end {
            self.accesses += 1;
            if !self.l1.access(a) && !self.l2.access(a) {
                // DRAM access; latency is accounted for by the cost model,
                // the simulator only counts events.
            }
            a += line;
        }
        let mut p = addr & !(page - 1);
        while p < end {
            self.tlb.access(p);
            p += page;
        }
    }

    /// `(predictions, mispredictions)` for one branch site id.
    pub fn branch_site_stats(&self, site: u32) -> (u64, u64) {
        self.branches.site_stats(site)
    }

    /// Current counter values.
    pub fn counters(&self) -> HwCounters {
        HwCounters {
            accesses: self.accesses,
            l1_misses: self.l1.misses(),
            l2_misses: self.l2.misses(),
            dtlb_misses: self.tlb.misses(),
            page_walk_cycles: self.tlb.walk_cycles_total(),
            branches: self.branches.predictions(),
            branch_mispredictions: self.branches.mispredictions(),
        }
    }
}

impl AccessTracker for HwSimTracker {
    #[inline]
    fn random_access(&mut self, addr: u64, bytes: usize) {
        self.touch_range(addr, bytes);
    }

    #[inline]
    fn sequential_read(&mut self, addr: u64, bytes: usize) {
        self.touch_range(addr, bytes);
    }

    #[inline]
    fn branch(&mut self, site: u32, taken: bool) {
        self.branches.record(site, taken);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_hits_on_repeat_access() {
        let mut c = Cache::new(CacheConfig::l1d());
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1004)); // same line
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hits(), 2);
    }

    #[test]
    fn cache_lru_evicts_oldest() {
        // Direct-mapped-ish tiny cache: 2 lines, 1 way, 64B lines -> 2 sets.
        let mut c = Cache::new(CacheConfig {
            size_bytes: 128,
            line_bytes: 64,
            associativity: 1,
        });
        assert!(!c.access(0)); // set 0
        assert!(!c.access(128)); // set 0, evicts line 0
        assert!(!c.access(0)); // miss again
    }

    #[test]
    fn cache_associativity_retains_conflicting_lines() {
        // 2-way, single set: both conflicting lines fit.
        let mut c = Cache::new(CacheConfig {
            size_bytes: 128,
            line_bytes: 64,
            associativity: 2,
        });
        assert!(!c.access(0));
        assert!(!c.access(64 * 2)); // same set in a 1-set cache
        assert!(c.access(0));
        assert!(c.access(64 * 2));
    }

    #[test]
    fn tlb_counts_walks() {
        let mut t = Tlb::new(TlbConfig {
            entries: 2,
            page_bytes: 4096,
            walk_cycles: 30,
        });
        t.access(0);
        t.access(4096);
        t.access(0); // hit
        t.access(2 * 4096); // evicts page 1 (LRU)
        t.access(4096); // miss again
        assert_eq!(t.misses(), 4);
        assert_eq!(t.walk_cycles_total(), 120);
    }

    #[test]
    fn branch_predictor_learns_biased_branch() {
        let mut p = BranchPredictor::new(64);
        for _ in 0..100 {
            p.record(7, true);
        }
        // After warm-up the always-taken branch is predicted perfectly.
        assert!(p.mispredictions() <= 2);
    }

    #[test]
    fn branch_predictor_struggles_on_alternating() {
        let mut p = BranchPredictor::new(64);
        for i in 0..100 {
            p.record(7, i % 2 == 0);
        }
        // A bimodal predictor mispredicts roughly half of an alternating stream.
        assert!(p.mispredictions() > 30);
    }

    #[test]
    fn sim_counts_lines_and_pages_of_large_reads() {
        let mut hw = HwSimTracker::default();
        hw.sequential_read(0, 64 * 10);
        let c = hw.counters();
        assert_eq!(c.accesses, 10);
        assert_eq!(c.l1_misses, 10);
        assert_eq!(c.dtlb_misses, 1);
    }

    #[test]
    fn random_stream_misses_more_than_sequential() {
        // Steady state: repeatedly touch the same 512 KiB working set, either
        // scattered (one line per page) or as a linear scan.
        let mut rnd = HwSimTracker::default();
        let mut seq = HwSimTracker::default();
        for pass in 0..5u64 {
            for i in 0..10_000u64 {
                let scattered = ((i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16) % (512 * 1024)) & !7;
                rnd.random_access(scattered, 8);
                seq.sequential_read((pass * 10_000 + i) % 65_536 * 8, 8);
            }
        }
        // The linear scan stays in cache/TLB after the first pass; the
        // scattered chase keeps paying.
        assert!(rnd.counters().dtlb_misses > 10 * (seq.counters().dtlb_misses + 1));
        assert!(rnd.counters().l1_misses > 2 * seq.counters().l1_misses);
    }

    #[test]
    fn pct_change_formats() {
        assert!((HwCounters::pct_change(100, 140) - 40.0).abs() < 1e-9);
        assert!((HwCounters::pct_change(100, 88) + 12.0).abs() < 1e-9);
        assert_eq!(HwCounters::pct_change(0, 5), 0.0);
    }
}
