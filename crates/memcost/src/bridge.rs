//! Bridges the counting tracker into the telemetry registry, so the
//! paper's *predicted* cost (`Cost_Random`/`Cost_Scan` priced through
//! [`CountingTracker::modeled_cost`]) accumulates beside *measured*
//! wall-clock time, per query class. This is the raw material of the
//! cost-model-validation experiment: if the Section IV-A model is any
//! good, the two series should correlate strongly within each class.

use std::sync::Arc;
use std::time::Duration;

use broadmatch_telemetry::{Counter, Registry};

use crate::{CostModel, CountingTracker};

/// Predicted cost is a float (model units); counters are integers. Store
/// milli-units so sub-unit queries still register.
const COST_SCALE: f64 = 1e3;

/// Accumulates predicted model cost and measured wall-clock time for one
/// query class (e.g. `len3` for three-word queries) into a shared
/// [`Registry`].
///
/// Three counter families, all labeled `{class="..."}`:
///
/// * `broadmatch_cost_predicted_milliunits_total` — modeled cost × 1000
/// * `broadmatch_cost_measured_ns_total` — wall-clock nanoseconds
/// * `broadmatch_cost_queries_total` — observations
#[derive(Debug, Clone)]
pub struct CostModelBridge {
    model: CostModel,
    predicted: Arc<Counter>,
    measured_ns: Arc<Counter>,
    queries: Arc<Counter>,
}

impl CostModelBridge {
    /// Register the three cost families for `class` in `registry`.
    pub fn new(registry: &Registry, model: CostModel, class: &str) -> Self {
        let labels = [("class", class)];
        CostModelBridge {
            model,
            predicted: registry.counter(
                "broadmatch_cost_predicted_milliunits_total",
                "Predicted query cost under the paper's cost model, in milli-units",
                &labels,
            ),
            measured_ns: registry.counter(
                "broadmatch_cost_measured_ns_total",
                "Measured wall-clock query time in nanoseconds",
                &labels,
            ),
            queries: registry.counter(
                "broadmatch_cost_queries_total",
                "Queries observed by the cost-model bridge",
                &labels,
            ),
        }
    }

    /// Record one query: price `tracker` under the model and pair it with
    /// the measured `wall` time. Returns the predicted cost (model units)
    /// for callers that also keep per-query samples.
    pub fn observe(&self, tracker: &CountingTracker, wall: Duration) -> f64 {
        let predicted = tracker.modeled_cost(&self.model);
        self.predicted.add((predicted * COST_SCALE).round() as u64);
        self.measured_ns.add(wall.as_nanos() as u64);
        self.queries.inc();
        predicted
    }

    /// The cost model this bridge prices accesses under.
    pub fn model(&self) -> &CostModel {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AccessTracker;

    #[test]
    fn bridge_accumulates_predicted_and_measured() {
        let registry = Registry::new();
        let bridge = CostModelBridge::new(&registry, CostModel::dram(), "len2");

        let mut t = CountingTracker::new();
        t.random_access(0, 8);
        t.sequential_read(8, 92);
        let predicted = bridge.observe(&t, Duration::from_micros(3));
        assert!((predicted - t.modeled_cost(&CostModel::dram())).abs() < 1e-9);

        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("broadmatch_cost_queries_total", "class=\"len2\""),
            Some(1)
        );
        assert_eq!(
            snap.counter("broadmatch_cost_measured_ns_total", "class=\"len2\""),
            Some(3_000)
        );
        let milli = snap
            .counter(
                "broadmatch_cost_predicted_milliunits_total",
                "class=\"len2\"",
            )
            .unwrap();
        assert_eq!(milli, (predicted * 1e3).round() as u64);
    }

    #[test]
    fn classes_accumulate_independently() {
        let registry = Registry::new();
        let a = CostModelBridge::new(&registry, CostModel::dram(), "len1");
        let b = CostModelBridge::new(&registry, CostModel::dram(), "len2");
        let mut t = CountingTracker::new();
        t.random_access(0, 8);
        a.observe(&t, Duration::from_nanos(100));
        b.observe(&t, Duration::from_nanos(200));
        b.observe(&t, Duration::from_nanos(200));

        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("broadmatch_cost_queries_total", "class=\"len1\""),
            Some(1)
        );
        assert_eq!(
            snap.counter("broadmatch_cost_queries_total", "class=\"len2\""),
            Some(2)
        );
        assert_eq!(snap.counter_total("broadmatch_cost_measured_ns_total"), 500);
    }
}
