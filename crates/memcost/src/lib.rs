//! Main-memory access cost modeling and access tracking.
//!
//! This crate is the substrate behind Section IV-A of *"A Data Structure for
//! Sponsored Search"* (ICDE 2009). The paper optimizes its index layout under
//! a simplified cost model that distinguishes **random** memory accesses
//! (assigned a fixed cost `Cost_Random`) from **sequential** scans of `m`
//! bytes (assigned a monotonically increasing cost `Cost_Scan(m)`), and
//! validates the resulting structures with hardware performance counters
//! (DTLB misses, page-walk cycles, L2 cache misses, branch mispredictions —
//! Section VII-C).
//!
//! Three pieces live here:
//!
//! * [`CostModel`] — the paper's `(Cost_Random, Cost_Scan)` pair. The paper
//!   only requires `Cost_Scan` to be positive and monotone; we use an affine
//!   function, which additionally lets the optimizer decompose node scan cost
//!   per entry (documented in `DESIGN.md`).
//! * [`AccessTracker`] — a trait through which every index data structure in
//!   the workspace reports the memory accesses it performs. The
//!   [`NullTracker`] compiles to nothing (wall-clock benchmarks), the
//!   [`CountingTracker`] aggregates access/byte counts (the Fig. 8 byte-ratio
//!   experiments), and the [`HwSimTracker`] drives a small cache/TLB/branch
//!   simulator.
//! * [`HwSimTracker`] — a stand-in for the Intel VTune counters of Section
//!   VII-C, which cannot be collected portably. It simulates set-associative
//!   L1/L2 data caches, an LRU DTLB with page-walk cost, and a table of
//!   two-bit saturating branch counters, fed with the *actual* address stream
//!   the index produces. The paper's analysis is about relative counter
//!   movement between layouts under identical probe patterns, which this
//!   reproduces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bridge;
mod cost;
mod hwsim;
mod tracker;

pub use bridge::CostModelBridge;
pub use cost::CostModel;
pub use hwsim::{
    BranchPredictor, Cache, CacheConfig, HwCounters, HwSimConfig, HwSimTracker, Tlb, TlbConfig,
};
pub use tracker::{AccessKind, AccessTracker, CountingTracker, NullTracker};
