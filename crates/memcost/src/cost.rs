//! The paper's `(Cost_Random, Cost_Scan)` main-memory cost model.

/// Cost model for main-memory access (paper, Section IV-A).
///
/// A *random* access — one that jumps to an unrelated address, paying for
/// potential cache misses, a DTLB miss and the loss of DRAM burst mode — is
/// assigned the fixed cost [`CostModel::cost_random`]. A *sequential* read of
/// `m` bytes that follows a random access to the start of the run is assigned
/// `Cost_Scan(m) = scan_base + scan_byte * m`.
///
/// The paper only requires `Cost_Scan` to be positive and monotonically
/// increasing in `m`; the affine form used here satisfies that and makes the
/// per-entry decomposition in the re-mapping optimizer exact. Costs are
/// unitless (think "nanoseconds on the 2009 Xeon of the paper"); only ratios
/// matter for layout decisions.
///
/// # Examples
///
/// ```
/// use broadmatch_memcost::CostModel;
///
/// let m = CostModel::default();
/// // A random access is far more expensive than streaming a few bytes.
/// assert!(m.cost_random > m.cost_scan(64));
/// // ... but much less than streaming a large node.
/// assert!(m.cost_random < m.cost_scan(4096));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost of one random main-memory access (`Cost_Random`).
    pub cost_random: f64,
    /// Fixed component of `Cost_Scan(m)` (paid once per contiguous run).
    pub scan_base: f64,
    /// Per-byte component of `Cost_Scan(m)`.
    pub scan_byte: f64,
}

impl CostModel {
    /// A model calibrated to commodity DRAM: a random access costs about as
    /// much as streaming ~400 bytes. The paper notes that the gap between
    /// random and sequential access in main memory is "much less pronounced"
    /// than on disk, which is what bounds data nodes to a small number of
    /// advertisements (Section V-B); this default preserves that property.
    pub fn dram() -> Self {
        CostModel {
            cost_random: 100.0,
            scan_base: 0.0,
            scan_byte: 0.25,
        }
    }

    /// A disk-like model with a very large random/sequential gap. Not used by
    /// the paper (the structure is memory-resident) but handy for ablations:
    /// under this model the optimizer packs far more ads per node.
    pub fn disk_like() -> Self {
        CostModel {
            cost_random: 100_000.0,
            scan_base: 0.0,
            scan_byte: 0.05,
        }
    }

    /// `Cost_Scan(m)`: cost of sequentially reading `m` bytes once the random
    /// access to the start of the run has been paid.
    #[inline]
    pub fn cost_scan(&self, bytes: usize) -> f64 {
        self.scan_base + self.scan_byte * bytes as f64
    }

    /// Cost of a random access followed by a sequential read of `bytes`.
    #[inline]
    pub fn cost_random_then_scan(&self, bytes: usize) -> f64 {
        self.cost_random + self.cost_scan(bytes)
    }

    /// The largest number of *extra* bytes worth scanning to save one random
    /// access. This is the quantity that bounds the size of a data node in
    /// the re-mapping optimizer (Section V-B): once the irrelevant bytes a
    /// query must wade through exceed this, splitting the node wins.
    pub fn break_even_scan_bytes(&self) -> usize {
        if self.scan_byte <= 0.0 {
            return usize::MAX;
        }
        (((self.cost_random - self.scan_base).max(0.0)) / self.scan_byte) as usize
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::dram()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_is_monotone() {
        let m = CostModel::default();
        let mut prev = -1.0;
        for bytes in [0usize, 1, 2, 10, 100, 1000, 1_000_000] {
            let c = m.cost_scan(bytes);
            assert!(c >= prev, "Cost_Scan must be monotone");
            assert!(c >= 0.0);
            prev = c;
        }
    }

    #[test]
    fn break_even_matches_model() {
        let m = CostModel {
            cost_random: 100.0,
            scan_base: 0.0,
            scan_byte: 0.25,
        };
        assert_eq!(m.break_even_scan_bytes(), 400);
        // Scanning exactly the break-even bytes costs exactly one random access.
        assert!((m.cost_scan(400) - m.cost_random).abs() < 1e-9);
    }

    #[test]
    fn break_even_handles_degenerate_models() {
        let free_scan = CostModel {
            cost_random: 10.0,
            scan_base: 0.0,
            scan_byte: 0.0,
        };
        assert_eq!(free_scan.break_even_scan_bytes(), usize::MAX);

        let expensive_base = CostModel {
            cost_random: 10.0,
            scan_base: 50.0,
            scan_byte: 1.0,
        };
        assert_eq!(expensive_base.break_even_scan_bytes(), 0);
    }

    #[test]
    fn disk_like_packs_more() {
        assert!(
            CostModel::disk_like().break_even_scan_bytes()
                > CostModel::dram().break_even_scan_bytes()
        );
    }
}
