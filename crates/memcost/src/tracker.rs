//! The [`AccessTracker`] trait and its counting implementations.

use crate::CostModel;

/// Sink for the memory accesses a data structure performs while answering a
/// query.
///
/// Every index in this workspace (the broad-match hash structure, both
/// inverted-index baselines, the compressed directory) funnels its reads
/// through this trait so that a single code path serves three purposes:
///
/// * **Wall-clock benchmarking** with [`NullTracker`], whose methods are
///   empty `#[inline]` bodies that vanish after monomorphization;
/// * **Byte accounting** with [`CountingTracker`] (the paper's Fig. 8
///   "amount of data accessed" experiments and the cost-model evaluation);
/// * **Hardware-counter simulation** with
///   [`HwSimTracker`](crate::HwSimTracker) (the Section VII-C analysis).
///
/// Addresses are logical byte offsets within whichever arena/heap the caller
/// manages; they need to be stable and distinct across structures but are
/// never dereferenced here.
pub trait AccessTracker {
    /// A random access (pointer chase / hash probe) touching `bytes` bytes at
    /// `addr`.
    fn random_access(&mut self, addr: u64, bytes: usize);

    /// A sequential read of `bytes` bytes at `addr`, continuing a run whose
    /// start has already been paid for via [`AccessTracker::random_access`].
    fn sequential_read(&mut self, addr: u64, bytes: usize);

    /// A conditional branch at call-site id `site` that was `taken` or not.
    /// Used by the branch-misprediction simulation; counting trackers may
    /// ignore it.
    fn branch(&mut self, site: u32, taken: bool);
}

/// Which kind of access a read was. Used by reporting helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A pointer chase to an unrelated address.
    Random,
    /// A continuation of a sequential run.
    Sequential,
}

/// A tracker that does nothing. With `opt-level >= 1` all calls disappear, so
/// query code that is generic over [`AccessTracker`] can run at full speed.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTracker;

impl AccessTracker for NullTracker {
    #[inline(always)]
    fn random_access(&mut self, _addr: u64, _bytes: usize) {}

    #[inline(always)]
    fn sequential_read(&mut self, _addr: u64, _bytes: usize) {}

    #[inline(always)]
    fn branch(&mut self, _site: u32, _taken: bool) {}
}

/// Aggregates access counts and byte volumes, and can price them under a
/// [`CostModel`].
///
/// # Examples
///
/// ```
/// use broadmatch_memcost::{AccessTracker, CostModel, CountingTracker};
///
/// let mut t = CountingTracker::default();
/// t.random_access(0x1000, 8);
/// t.sequential_read(0x1008, 56);
/// assert_eq!(t.random_accesses, 1);
/// assert_eq!(t.bytes_total(), 64);
///
/// let m = CostModel::default();
/// let expected = m.cost_random + m.cost_scan(8) + m.cost_scan(56);
/// assert!((t.modeled_cost(&m) - expected).abs() < 1e-9);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CountingTracker {
    /// Number of random accesses.
    pub random_accesses: u64,
    /// Number of sequential reads.
    pub sequential_reads: u64,
    /// Bytes touched by random accesses.
    pub bytes_random: u64,
    /// Bytes touched by sequential reads.
    pub bytes_sequential: u64,
    /// Branch events observed (taken + not taken).
    pub branches: u64,
}

impl CountingTracker {
    /// Create an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes read through this tracker.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_random + self.bytes_sequential
    }

    /// Price the recorded accesses under `model`.
    ///
    /// Each random access pays `Cost_Random` plus the scan cost of the bytes
    /// it touches; each sequential read pays only its scan cost. With an
    /// affine `Cost_Scan` this equals pricing every maximal run exactly.
    pub fn modeled_cost(&self, model: &CostModel) -> f64 {
        self.random_accesses as f64 * model.cost_random
            + model.scan_base * (self.random_accesses + self.sequential_reads) as f64
            + model.scan_byte * self.bytes_total() as f64
    }

    /// Reset all counters to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Merge the counts of `other` into `self`.
    pub fn merge(&mut self, other: &CountingTracker) {
        self.random_accesses += other.random_accesses;
        self.sequential_reads += other.sequential_reads;
        self.bytes_random += other.bytes_random;
        self.bytes_sequential += other.bytes_sequential;
        self.branches += other.branches;
    }
}

impl AccessTracker for CountingTracker {
    #[inline]
    fn random_access(&mut self, _addr: u64, bytes: usize) {
        self.random_accesses += 1;
        self.bytes_random += bytes as u64;
    }

    #[inline]
    fn sequential_read(&mut self, _addr: u64, bytes: usize) {
        self.sequential_reads += 1;
        self.bytes_sequential += bytes as u64;
    }

    #[inline]
    fn branch(&mut self, _site: u32, _taken: bool) {
        self.branches += 1;
    }
}

/// Forwarding impl so call sites can pass `&mut tracker` without caring about
/// ownership.
impl<T: AccessTracker + ?Sized> AccessTracker for &mut T {
    #[inline(always)]
    fn random_access(&mut self, addr: u64, bytes: usize) {
        (**self).random_access(addr, bytes);
    }

    #[inline(always)]
    fn sequential_read(&mut self, addr: u64, bytes: usize) {
        (**self).sequential_read(addr, bytes);
    }

    #[inline(always)]
    fn branch(&mut self, site: u32, taken: bool) {
        (**self).branch(site, taken);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_tracker_accumulates() {
        let mut t = CountingTracker::new();
        t.random_access(0, 16);
        t.random_access(4096, 8);
        t.sequential_read(16, 100);
        t.branch(1, true);
        t.branch(1, false);

        assert_eq!(t.random_accesses, 2);
        assert_eq!(t.sequential_reads, 1);
        assert_eq!(t.bytes_random, 24);
        assert_eq!(t.bytes_sequential, 100);
        assert_eq!(t.bytes_total(), 124);
        assert_eq!(t.branches, 2);
    }

    #[test]
    fn modeled_cost_prices_random_and_scan() {
        let mut t = CountingTracker::new();
        t.random_access(0, 0);
        t.sequential_read(0, 400);
        let m = CostModel {
            cost_random: 100.0,
            scan_base: 1.0,
            scan_byte: 0.25,
        };
        // 100 (random) + 2 * 1.0 (bases) + 0.25 * 400.
        assert!((t.modeled_cost(&m) - 202.0).abs() < 1e-9);
    }

    #[test]
    fn merge_and_reset() {
        let mut a = CountingTracker::new();
        a.random_access(0, 8);
        let mut b = CountingTracker::new();
        b.sequential_read(8, 32);
        a.merge(&b);
        assert_eq!(a.random_accesses, 1);
        assert_eq!(a.sequential_reads, 1);
        assert_eq!(a.bytes_total(), 40);
        a.reset();
        assert_eq!(a, CountingTracker::default());
    }

    #[test]
    fn null_tracker_is_callable() {
        let mut t = NullTracker;
        t.random_access(0, 1);
        t.sequential_read(0, 1);
        t.branch(0, true);
    }

    #[test]
    fn forwarding_impl_works() {
        fn probe<T: AccessTracker>(mut t: T) {
            t.random_access(0, 4);
        }
        let mut c = CountingTracker::new();
        probe(&mut c);
        assert_eq!(c.random_accesses, 1);
    }
}
