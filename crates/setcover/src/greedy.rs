//! The lazy greedy algorithm (Chvátal) and withdrawal-step improvement.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::{CandidateSet, CoverError, CoverSolution};

/// Heap entry ordered by ascending price (min-heap via reversed `Ord`).
struct Entry {
    price: f64,
    uncovered_when_scored: usize,
    idx: usize,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.price == other.price && self.idx == other.idx
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the cheapest price first.
        other
            .price
            .partial_cmp(&self.price)
            .expect("weights validated finite")
            .then_with(|| other.idx.cmp(&self.idx))
    }
}

fn validate_weights(candidates: &[CandidateSet]) -> Result<(), CoverError> {
    for (i, c) in candidates.iter().enumerate() {
        if !c.weight.is_finite() || c.weight < 0.0 {
            return Err(CoverError::InvalidWeight { candidate: i });
        }
    }
    Ok(())
}

fn check_coverable(universe: u32, candidates: &[CandidateSet]) -> Result<(), CoverError> {
    let mut coverable = vec![false; universe as usize];
    for c in candidates {
        for &e in &c.elements {
            if let Some(slot) = coverable.get_mut(e as usize) {
                *slot = true;
            }
        }
    }
    if let Some(e) = coverable.iter().position(|&c| !c) {
        return Err(CoverError::Uncoverable { element: e as u32 });
    }
    Ok(())
}

/// Greedy weighted set cover over elements `0..universe`.
///
/// Repeatedly chooses the candidate with the lowest *price* —
/// `weight / #newly-covered-elements` — using the standard lazy-evaluation
/// trick: prices only increase as elements get covered, so a heap entry is
/// re-scored only when popped. Runs in `O(Σ|S| log |candidates|)`.
///
/// For instances whose sets have at most `k` elements the result is within
/// `H_k` of optimal (paper, Section V-B; Chvátal '79).
///
/// # Errors
/// [`CoverError::Uncoverable`] if some element is in no set;
/// [`CoverError::InvalidWeight`] for negative/NaN weights.
///
/// # Examples
///
/// ```
/// use broadmatch_setcover::{greedy_cover, CandidateSet};
///
/// let candidates = vec![
///     CandidateSet::new(vec![0, 1, 2], 3.5, 0),
///     CandidateSet::new(vec![0], 1.0, 1),
///     CandidateSet::new(vec![1], 1.0, 2),
///     CandidateSet::new(vec![2], 1.0, 3),
/// ];
/// let sol = greedy_cover(3, &candidates).unwrap();
/// // The bundle (price 3.5/3 ≈ 1.17) loses to three singletons at price 1.0.
/// assert_eq!(sol.total_weight, 3.0);
/// ```
pub fn greedy_cover(
    universe: u32,
    candidates: &[CandidateSet],
) -> Result<CoverSolution, CoverError> {
    validate_weights(candidates)?;
    check_coverable(universe, candidates)?;

    let mut covered = vec![false; universe as usize];
    let mut covered_count = 0u32;
    let mut heap = BinaryHeap::with_capacity(candidates.len());
    for (i, c) in candidates.iter().enumerate() {
        let distinct = distinct_count(&c.elements);
        if distinct > 0 {
            heap.push(Entry {
                price: c.weight / distinct as f64,
                uncovered_when_scored: distinct,
                idx: i,
            });
        }
    }

    let mut chosen = Vec::new();
    let mut total_weight = 0.0;
    while covered_count < universe {
        let entry = heap.pop().expect("coverable instance cannot exhaust heap");
        let c = &candidates[entry.idx];
        let fresh = c
            .elements
            .iter()
            .filter(|&&e| !covered[e as usize])
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        if fresh == 0 {
            continue;
        }
        if fresh < entry.uncovered_when_scored {
            // Stale score: re-push with the current price.
            heap.push(Entry {
                price: c.weight / fresh as f64,
                uncovered_when_scored: fresh,
                idx: entry.idx,
            });
            continue;
        }
        // Fresh count can only shrink, so an up-to-date entry is optimal now.
        chosen.push(entry.idx);
        total_weight += c.weight;
        for &e in &c.elements {
            let slot = &mut covered[e as usize];
            if !*slot {
                *slot = true;
                covered_count += 1;
            }
        }
    }

    Ok(CoverSolution {
        chosen,
        total_weight,
    })
}

fn distinct_count(elements: &[u32]) -> usize {
    let mut v: Vec<u32> = elements.to_vec();
    v.sort_unstable();
    v.dedup();
    v.len()
}

/// Greedy cover followed by *withdrawal steps* — the local improvement the
/// paper points to via Hassin–Levin '05 ("through the use of withdrawal
/// steps this approximation factor can be reduced further").
///
/// Each step tentatively **adds** one unchosen candidate, then **withdraws**
/// every chosen set made fully redundant by it (all of its elements covered
/// at multiplicity ≥ 2, heaviest first); the move is kept iff it lowers the
/// total weight. Rounds repeat until a fixpoint or `max_rounds`.
///
/// Never returns a worse cover than [`greedy_cover`], and the result is
/// always a valid cover (withdrawals only remove redundant sets).
pub fn with_withdrawals(
    universe: u32,
    candidates: &[CandidateSet],
    max_rounds: usize,
) -> Result<CoverSolution, CoverError> {
    let mut sol = greedy_cover(universe, candidates)?;
    if universe == 0 {
        return Ok(sol);
    }

    let mut in_solution = vec![false; candidates.len()];
    for &i in &sol.chosen {
        in_solution[i] = true;
    }
    // Coverage multiplicity under the current solution.
    let mut cover_count = vec![0u32; universe as usize];
    for &i in &sol.chosen {
        for &e in &dedup(&candidates[i].elements) {
            cover_count[e as usize] += 1;
        }
    }

    for _ in 0..max_rounds {
        let mut improved = false;

        // Prune pass: drop chosen sets that are already fully redundant
        // (can happen after earlier accepted moves).
        for pos in (0..sol.chosen.len()).rev() {
            let v = sol.chosen[pos];
            let elems = dedup(&candidates[v].elements);
            if !elems.is_empty() && elems.iter().all(|&e| cover_count[e as usize] >= 2) {
                for &e in &elems {
                    cover_count[e as usize] -= 1;
                }
                in_solution[v] = false;
                sol.chosen.swap_remove(pos);
                sol.total_weight -= candidates[v].weight;
                improved = true;
            }
        }

        // element -> chosen sets currently covering it. Adding a candidate
        // can only make *overlapping* chosen sets redundant (coverage
        // counts change on the added elements alone), so victims are found
        // through this map instead of scanning the whole solution.
        let mut covering: std::collections::HashMap<u32, Vec<usize>> =
            std::collections::HashMap::new();
        for &i in &sol.chosen {
            for &e in &dedup(&candidates[i].elements) {
                covering.entry(e).or_default().push(i);
            }
        }

        for add in 0..candidates.len() {
            if in_solution[add] || candidates[add].elements.is_empty() {
                continue;
            }
            let add_elems = dedup(&candidates[add].elements);
            // Victim candidates: chosen sets overlapping the added one,
            // heaviest first (maximizes savings under sequential checks).
            let mut victims: Vec<usize> = add_elems
                .iter()
                .flat_map(|e| covering.get(e).into_iter().flatten().copied())
                .filter(|&i| in_solution[i] && i != add)
                .collect();
            victims.sort_unstable();
            victims.dedup();
            if victims.is_empty() {
                continue;
            }
            victims.sort_by(|&a, &b| {
                candidates[b]
                    .weight
                    .partial_cmp(&candidates[a].weight)
                    .expect("weights validated finite")
            });
            // Quick reject: even withdrawing every overlapping set cannot
            // pay for the addition.
            let max_saving: f64 = victims.iter().map(|&v| candidates[v].weight).sum();
            if max_saving <= candidates[add].weight + 1e-12 {
                continue;
            }

            // Multiplicities as if `add` were installed.
            for &e in &add_elems {
                cover_count[e as usize] += 1;
            }
            let mut withdrawn = Vec::new();
            let mut saved = 0.0;
            for v in victims {
                let elems = dedup(&candidates[v].elements);
                if elems.iter().all(|&e| cover_count[e as usize] >= 2) {
                    for &e in &elems {
                        cover_count[e as usize] -= 1;
                    }
                    withdrawn.push(v);
                    saved += candidates[v].weight;
                }
            }
            if saved > candidates[add].weight + 1e-12 {
                // Keep the move.
                in_solution[add] = true;
                sol.chosen.push(add);
                for &v in &withdrawn {
                    in_solution[v] = false;
                    for &e in &dedup(&candidates[v].elements) {
                        if let Some(list) = covering.get_mut(&e) {
                            list.retain(|&i| i != v);
                        }
                    }
                }
                for &e in &add_elems {
                    covering.entry(e).or_default().push(add);
                }
                sol.chosen.retain(|&i| in_solution[i]);
                sol.total_weight += candidates[add].weight - saved;
                improved = true;
            } else {
                // Roll back.
                for &v in withdrawn.iter().rev() {
                    for &e in &dedup(&candidates[v].elements) {
                        cover_count[e as usize] += 1;
                    }
                }
                for &e in &add_elems {
                    cover_count[e as usize] -= 1;
                }
            }
        }
        if !improved {
            break;
        }
    }

    // Recompute the weight exactly to avoid drift from incremental updates.
    sol.total_weight = sol.chosen.iter().map(|&i| candidates[i].weight).sum();
    Ok(sol)
}

fn dedup(elements: &[u32]) -> Vec<u32> {
    let mut v = elements.to_vec();
    v.sort_unstable();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn singletons(n: u32, weight: f64) -> Vec<CandidateSet> {
        (0..n)
            .map(|e| CandidateSet::new(vec![e], weight, e as u64))
            .collect()
    }

    #[test]
    fn trivial_universe() {
        let sol = greedy_cover(0, &[]).unwrap();
        assert!(sol.chosen.is_empty());
        assert_eq!(sol.total_weight, 0.0);
    }

    #[test]
    fn picks_cheap_bundle_over_singletons() {
        let mut candidates = singletons(4, 1.0);
        candidates.push(CandidateSet::new(vec![0, 1, 2, 3], 2.0, 99));
        let sol = greedy_cover(4, &candidates).unwrap();
        sol.validate(4, &candidates).unwrap();
        assert_eq!(sol.chosen, vec![4]);
        assert_eq!(sol.total_weight, 2.0);
    }

    #[test]
    fn uncoverable_detected() {
        let candidates = singletons(2, 1.0);
        match greedy_cover(3, &candidates) {
            Err(CoverError::Uncoverable { element: 2 }) => {}
            other => panic!("expected Uncoverable(2), got {other:?}"),
        }
    }

    #[test]
    fn invalid_weight_detected() {
        let candidates = vec![CandidateSet::new(vec![0], -1.0, 0)];
        assert!(matches!(
            greedy_cover(1, &candidates),
            Err(CoverError::InvalidWeight { candidate: 0 })
        ));
        let candidates = vec![CandidateSet::new(vec![0], f64::NAN, 0)];
        assert!(matches!(
            greedy_cover(1, &candidates),
            Err(CoverError::InvalidWeight { candidate: 0 })
        ));
    }

    #[test]
    fn duplicate_elements_do_not_distort_price() {
        // A set listing element 0 three times still covers only one element:
        // its true price is 1.2, not 0.4. If duplicates inflated the price
        // denominator, greedy would pick it first and end at weight 2.1.
        let candidates = vec![
            CandidateSet::new(vec![0, 0, 0], 1.2, 0),
            CandidateSet::new(vec![0, 1], 1.0, 1),
            CandidateSet::new(vec![1], 0.9, 2),
        ];
        let sol = greedy_cover(2, &candidates).unwrap();
        sol.validate(2, &candidates).unwrap();
        assert_eq!(sol.chosen, vec![1]);
        assert_eq!(sol.total_weight, 1.0);
    }

    #[test]
    fn greedy_classic_worst_case_then_withdrawal_fixes_it() {
        // Classic H_k example: elements 0..3; greedy is lured by big sets.
        // Singletons with weights 1/1, and one set covering everything at 2.2,
        // plus a decoy covering {0,1,2} at 1.4 (price 0.466) that forces a
        // two-set solution costing 1.4 + 1.0 = 2.4 > 2.2.
        let candidates = vec![
            CandidateSet::new(vec![0, 1, 2], 1.4, 0),
            CandidateSet::new(vec![3], 1.0, 1),
            CandidateSet::new(vec![0, 1, 2, 3], 2.2, 2),
        ];
        let greedy = greedy_cover(4, &candidates).unwrap();
        assert!((greedy.total_weight - 2.4).abs() < 1e-9);

        let improved = with_withdrawals(4, &candidates, 10).unwrap();
        improved.validate(4, &candidates).unwrap();
        assert!((improved.total_weight - 2.2).abs() < 1e-9);
    }

    #[test]
    fn withdrawal_never_worsens() {
        let candidates = vec![
            CandidateSet::new(vec![0, 1], 1.0, 0),
            CandidateSet::new(vec![1, 2], 1.0, 1),
            CandidateSet::new(vec![2, 0], 1.0, 2),
        ];
        let g = greedy_cover(3, &candidates).unwrap();
        let w = with_withdrawals(3, &candidates, 10).unwrap();
        w.validate(3, &candidates).unwrap();
        assert!(w.total_weight <= g.total_weight + 1e-9);
    }

    #[test]
    fn zero_weight_sets_are_free() {
        let candidates = vec![
            CandidateSet::new(vec![0, 1, 2], 0.0, 0),
            CandidateSet::new(vec![0], 1.0, 1),
        ];
        let sol = greedy_cover(3, &candidates).unwrap();
        assert_eq!(sol.total_weight, 0.0);
        assert_eq!(sol.chosen, vec![0]);
    }
}
