//! Exact weighted set cover by branch-and-bound, for small instances.

use crate::{CandidateSet, CoverError, CoverSolution};

/// Maximum universe size accepted by [`exact_cover`]; the element bitmask
/// must fit a `u64` and the search is exponential anyway.
pub const MAX_EXACT_UNIVERSE: u32 = 40;

/// Optimal weighted set cover by branch-and-bound.
///
/// Branches on the lowest-id uncovered element (every cover must pay for it)
/// and prunes with an admissible bound: each uncovered element costs at
/// least "the cheapest per-element price of any set covering it". Intended
/// for testing the greedy's approximation quality and for the optimizer
/// ablation benchmarks — never for production-sized instances.
///
/// # Errors
/// Same as [`crate::greedy_cover`], plus instances with
/// `universe > MAX_EXACT_UNIVERSE` are rejected as uncoverable-by-policy via
/// a panic (programmer error, not data error).
///
/// # Panics
/// Panics if `universe > MAX_EXACT_UNIVERSE`.
///
/// # Examples
///
/// ```
/// use broadmatch_setcover::{exact_cover, greedy_cover, CandidateSet};
///
/// let candidates = vec![
///     CandidateSet::new(vec![0, 1, 2], 1.4, 0),
///     CandidateSet::new(vec![3], 1.0, 1),
///     CandidateSet::new(vec![0, 1, 2, 3], 2.2, 2),
/// ];
/// let exact = exact_cover(4, &candidates).unwrap();
/// let greedy = greedy_cover(4, &candidates).unwrap();
/// assert!(exact.total_weight <= greedy.total_weight);
/// assert_eq!(exact.total_weight, 2.2);
/// ```
pub fn exact_cover(
    universe: u32,
    candidates: &[CandidateSet],
) -> Result<CoverSolution, CoverError> {
    assert!(
        universe <= MAX_EXACT_UNIVERSE,
        "exact_cover is exponential; universe {universe} exceeds {MAX_EXACT_UNIVERSE}"
    );
    for (i, c) in candidates.iter().enumerate() {
        if !c.weight.is_finite() || c.weight < 0.0 {
            return Err(CoverError::InvalidWeight { candidate: i });
        }
    }

    let full: u64 = if universe == 0 {
        0
    } else {
        (1u64 << universe) - 1
    };
    let masks: Vec<u64> = candidates
        .iter()
        .map(|c| {
            c.elements
                .iter()
                .filter(|&&e| e < universe)
                .fold(0u64, |m, &e| m | 1 << e)
        })
        .collect();

    // Per-element: sets covering it, and the cheapest per-element price.
    let mut covering: Vec<Vec<usize>> = vec![Vec::new(); universe as usize];
    let mut cheapest_price = vec![f64::INFINITY; universe as usize];
    for (i, c) in candidates.iter().enumerate() {
        let size = masks[i].count_ones().max(1) as f64;
        for e in 0..universe {
            if masks[i] >> e & 1 == 1 {
                covering[e as usize].push(i);
                let price = c.weight / size;
                if price < cheapest_price[e as usize] {
                    cheapest_price[e as usize] = price;
                }
            }
        }
    }
    if let Some(e) = cheapest_price.iter().position(|p| p.is_infinite()) {
        return Err(CoverError::Uncoverable { element: e as u32 });
    }

    struct Search<'a> {
        candidates: &'a [CandidateSet],
        masks: &'a [u64],
        covering: &'a [Vec<usize>],
        cheapest_price: &'a [f64],
        full: u64,
        best_weight: f64,
        best: Vec<usize>,
    }

    impl Search<'_> {
        fn bound(&self, covered: u64) -> f64 {
            let mut uncovered = self.full & !covered;
            let mut b = 0.0f64;
            while uncovered != 0 {
                let e = uncovered.trailing_zeros() as usize;
                b += self.cheapest_price[e];
                uncovered &= uncovered - 1;
            }
            b
        }

        fn go(&mut self, covered: u64, weight: f64, stack: &mut Vec<usize>) {
            if covered == self.full {
                if weight < self.best_weight {
                    self.best_weight = weight;
                    self.best = stack.clone();
                }
                return;
            }
            if weight + self.bound(covered) >= self.best_weight {
                return;
            }
            let e = (self.full & !covered).trailing_zeros() as usize;
            // Order branches by weight for earlier good incumbents.
            let mut options: Vec<usize> = self.covering[e].clone();
            options.sort_by(|&a, &b| {
                self.candidates[a]
                    .weight
                    .partial_cmp(&self.candidates[b].weight)
                    .expect("validated finite")
            });
            for i in options {
                stack.push(i);
                self.go(
                    covered | self.masks[i],
                    weight + self.candidates[i].weight,
                    stack,
                );
                stack.pop();
            }
        }
    }

    let mut search = Search {
        candidates,
        masks: &masks,
        covering: &covering,
        cheapest_price: &cheapest_price,
        full,
        best_weight: f64::INFINITY,
        best: Vec::new(),
    };
    // Seed the incumbent with "all sets" so the bound can prune immediately.
    let all_weight: f64 = candidates.iter().map(|c| c.weight).sum();
    search.best_weight = all_weight + 1.0;
    search.go(0, 0.0, &mut Vec::new());

    Ok(CoverSolution {
        chosen: search.best,
        total_weight: if universe == 0 {
            0.0
        } else {
            search.best_weight
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{greedy_cover, harmonic, with_withdrawals};

    #[test]
    fn empty_universe() {
        let sol = exact_cover(0, &[]).unwrap();
        assert!(sol.chosen.is_empty());
        assert_eq!(sol.total_weight, 0.0);
    }

    #[test]
    fn finds_optimum_on_small_instances() {
        let candidates = vec![
            CandidateSet::new(vec![0, 1], 2.0, 0),
            CandidateSet::new(vec![1, 2], 2.0, 1),
            CandidateSet::new(vec![0, 2], 2.0, 2),
            CandidateSet::new(vec![0, 1, 2], 3.5, 3),
        ];
        let sol = exact_cover(3, &candidates).unwrap();
        sol.validate(3, &candidates).unwrap();
        // Two pair-sets cost 4.0; the triple costs 3.5.
        assert_eq!(sol.total_weight, 3.5);
        assert_eq!(sol.chosen, vec![3]);
    }

    #[test]
    fn uncoverable_detected() {
        let candidates = vec![CandidateSet::new(vec![0], 1.0, 0)];
        assert!(matches!(
            exact_cover(2, &candidates),
            Err(CoverError::Uncoverable { element: 1 })
        ));
    }

    /// Randomized cross-check: greedy within H_k of exact, withdrawals in
    /// between. This is the paper's Section V-B guarantee.
    #[test]
    fn greedy_within_harmonic_bound_of_exact() {
        let mut state = 0xDEADBEEFu64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..200 {
            let universe = 3 + (rng() % 8) as u32; // 3..=10
            let n_sets = 4 + (rng() % 12) as usize;
            let max_size = 1 + (rng() % 4) as usize; // k <= 4
            let mut candidates = Vec::new();
            // Guarantee coverability with singletons.
            for e in 0..universe {
                candidates.push(CandidateSet::new(
                    vec![e],
                    1.0 + (rng() % 100) as f64 / 25.0,
                    e as u64,
                ));
            }
            for i in 0..n_sets {
                let size = 1 + (rng() as usize % max_size);
                let elements: Vec<u32> = (0..size)
                    .map(|_| (rng() % universe as u64) as u32)
                    .collect();
                candidates.push(CandidateSet::new(
                    elements,
                    0.5 + (rng() % 100) as f64 / 20.0,
                    100 + i as u64,
                ));
            }

            let exact = exact_cover(universe, &candidates).unwrap();
            let greedy = greedy_cover(universe, &candidates).unwrap();
            let withdrawn = with_withdrawals(universe, &candidates, 5).unwrap();

            exact.validate(universe, &candidates).unwrap();
            greedy.validate(universe, &candidates).unwrap();
            withdrawn.validate(universe, &candidates).unwrap();

            let k = candidates
                .iter()
                .map(|c| {
                    let mut v = c.elements.clone();
                    v.sort_unstable();
                    v.dedup();
                    v.len()
                })
                .max()
                .unwrap();
            assert!(
                greedy.total_weight <= harmonic(k) * exact.total_weight + 1e-9,
                "trial {trial}: greedy {} > H_{k} * exact {}",
                greedy.total_weight,
                exact.total_weight
            );
            assert!(withdrawn.total_weight <= greedy.total_weight + 1e-9);
            assert!(exact.total_weight <= withdrawn.total_weight + 1e-9);
        }
    }
}
