//! Instance and solution types for weighted set cover.

/// One candidate set in a weighted set cover instance.
///
/// In the re-mapping optimizer a candidate corresponds to one feasible data
/// node: `elements` are the distinct word-set groups stored in the node,
/// `weight` is the node's workload cost contribution (`weight(S)` of the
/// paper's equation (2)), and `tag` identifies the node locator so the
/// caller can reconstruct the mapping from the chosen sets.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateSet {
    /// Covered element ids. Duplicates are ignored; order is irrelevant.
    pub elements: Vec<u32>,
    /// Cost of choosing this set. Must be non-negative and finite.
    pub weight: f64,
    /// Opaque caller payload identifying what this set represents.
    pub tag: u64,
}

impl CandidateSet {
    /// Convenience constructor.
    pub fn new(elements: Vec<u32>, weight: f64, tag: u64) -> Self {
        CandidateSet {
            elements,
            weight,
            tag,
        }
    }
}

/// Why a cover could not be computed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoverError {
    /// Some element of the universe is in no candidate set.
    Uncoverable {
        /// The first element found to be uncoverable.
        element: u32,
    },
    /// A candidate set had a negative, NaN or infinite weight.
    InvalidWeight {
        /// Index of the offending candidate.
        candidate: usize,
    },
}

impl std::fmt::Display for CoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoverError::Uncoverable { element } => {
                write!(f, "element {element} is not contained in any candidate set")
            }
            CoverError::InvalidWeight { candidate } => {
                write!(f, "candidate set {candidate} has an invalid weight")
            }
        }
    }
}

impl std::error::Error for CoverError {}

/// A computed cover: indices into the candidate list, plus bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverSolution {
    /// Indices of the chosen candidate sets.
    pub chosen: Vec<usize>,
    /// Sum of the chosen sets' weights.
    pub total_weight: f64,
}

impl CoverSolution {
    /// Verify that `chosen` covers every element in `0..universe` and that
    /// `total_weight` is consistent. Used by tests and debug assertions.
    pub fn validate(&self, universe: u32, candidates: &[CandidateSet]) -> Result<(), String> {
        let mut covered = vec![false; universe as usize];
        let mut weight = 0.0;
        for &i in &self.chosen {
            let c = candidates
                .get(i)
                .ok_or_else(|| format!("chosen index {i} out of range"))?;
            for &e in &c.elements {
                if let Some(slot) = covered.get_mut(e as usize) {
                    *slot = true;
                }
            }
            weight += c.weight;
        }
        if let Some(missing) = covered.iter().position(|&c| !c) {
            return Err(format!("element {missing} left uncovered"));
        }
        if (weight - self.total_weight).abs() > 1e-6 * weight.abs().max(1.0) {
            return Err(format!(
                "total_weight {} disagrees with recomputed {}",
                self.total_weight, weight
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_catches_gaps() {
        let candidates = vec![CandidateSet::new(vec![0, 1], 1.0, 0)];
        let sol = CoverSolution {
            chosen: vec![0],
            total_weight: 1.0,
        };
        assert!(sol.validate(2, &candidates).is_ok());
        assert!(sol.validate(3, &candidates).is_err());
    }

    #[test]
    fn validate_catches_weight_mismatch() {
        let candidates = vec![CandidateSet::new(vec![0], 1.0, 0)];
        let sol = CoverSolution {
            chosen: vec![0],
            total_weight: 2.0,
        };
        assert!(sol.validate(1, &candidates).is_err());
    }

    #[test]
    fn error_display() {
        let e = CoverError::Uncoverable { element: 7 };
        assert!(e.to_string().contains('7'));
    }
}
