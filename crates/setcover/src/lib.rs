//! Weighted set cover solvers for the re-mapping optimizer of Section V.
//!
//! The paper proves that computing the latency-optimal assignment of ads to
//! data nodes is equivalent to **weighted set cover** over a base family
//! `S_Base` of feasible node contents, with `weight(S)` the node's
//! contribution to the workload cost (equation (2)). General weighted set
//! cover is NP-hard and inapproximable below `Ω(ln |S_Base|)` [Feige '98],
//! but the cost model bounds the useful size of a node to a small `k`, and
//! for `k`-bounded set sizes the classic greedy algorithm of Chvátal is an
//! `H_k`-approximation (`H_k = Σ_{i≤k} 1/i`); "withdrawal steps"
//! [Hassin–Levin '05] tighten it further.
//!
//! This crate implements:
//!
//! * [`greedy_cover`] — lazy (priority-queue) greedy, the paper's production
//!   algorithm;
//! * [`with_withdrawals`] — greedy followed by withdrawal/local-improvement
//!   steps;
//! * [`exact_cover`] — branch-and-bound, exponential, for small instances;
//!   used in tests and the approximation-quality ablation;
//! * [`harmonic`] — `H_k`, for checking the guarantee.
//!
//! Elements are dense `u32` ids (the core crate maps distinct word-set
//! groups onto them). Candidate sets carry an opaque `tag` so the caller can
//! map chosen sets back to node locators.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exact;
mod greedy;
mod instance;

pub use exact::exact_cover;
pub use greedy::{greedy_cover, with_withdrawals};
pub use instance::{CandidateSet, CoverError, CoverSolution};

/// The `k`-th harmonic number `H_k = Σ_{i=1..k} 1/i` — the greedy
/// approximation factor for set sizes bounded by `k` (paper, Section V-B).
pub fn harmonic(k: usize) -> f64 {
    (1..=k).map(|i| 1.0 / i as f64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_values() {
        assert_eq!(harmonic(0), 0.0);
        assert_eq!(harmonic(1), 1.0);
        assert!((harmonic(2) - 1.5).abs() < 1e-12);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
    }
}
