#!/usr/bin/env bash
# Run the Miri-compatible test subset for the core crate.
#
# Miri interprets every load and store, so it is ~3 orders of magnitude
# slower than a native run. The core test suite is kept Miri-sized:
#   - statistical sweeps (hash distribution, compression ratios) carry
#     `#[cfg_attr(miri, ignore)]` — they measure space/balance, not
#     memory safety, and contribute nothing under an interpreter;
#   - the persist round-trip corpus shrinks under `cfg(miri)`;
#   - everything else — delta overlay, tombstone filtering, persist
#     round-trips, maintenance, matching — runs in full.
#
# -Zmiri-disable-isolation: the optimizer reads Instant::now() for its
# telemetry; isolation would reject that. No other host access happens.
#
# Requires a nightly toolchain with the `miri` component:
#   rustup +nightly component add miri
set -euo pipefail
cd "$(dirname "$0")/.."
export MIRIFLAGS="${MIRIFLAGS:--Zmiri-disable-isolation}"
exec cargo +nightly miri test -p broadmatch "$@"
