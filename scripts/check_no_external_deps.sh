#!/usr/bin/env bash
# Dependency policy check (a cargo-deny stand-in that needs no network):
# every dependency of every workspace member must resolve to a path inside
# this repository. Registry or git dependencies anywhere — including dev
# and optional deps — would break the offline build.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# 1. No registry/git requirements in any manifest: every [dependencies]-like
#    table entry must be `{ path = ... }`, `workspace = true`, or a local
#    shim declared in [workspace.dependencies] with a path.
violations=$(cargo metadata --offline --format-version 1 --no-deps \
  | python3 -c '
import json, sys
meta = json.load(sys.stdin)
bad = []
for pkg in meta["packages"]:
    for dep in pkg["dependencies"]:
        # A path dependency carries "path"; registry deps carry "registry"
        # (or nothing but a version requirement), git deps carry "source".
        if dep.get("path") is None:
            bad.append("%s -> %s (%s)" % (pkg["name"], dep["name"], dep["req"]))
print("\n".join(bad))
')
if [ -n "$violations" ]; then
  echo "ERROR: non-path dependencies found:" >&2
  echo "$violations" >&2
  fail=1
fi

# 2. broadmatch-telemetry must stay dependency-free: every crate links it
#    (including leaf crates like memcost), so any dependency it grew would
#    become a workspace-wide edge — and a cycle the moment an instrumented
#    crate is the target.
telemetry_deps=$(cargo metadata --offline --format-version 1 --no-deps \
  | python3 -c '
import json, sys
meta = json.load(sys.stdin)
for pkg in meta["packages"]:
    if pkg["name"] == "broadmatch-telemetry":
        print("\n".join(d["name"] for d in pkg["dependencies"]))
')
if [ -n "$telemetry_deps" ]; then
  echo "ERROR: broadmatch-telemetry must have zero dependencies, found:" >&2
  echo "$telemetry_deps" >&2
  fail=1
fi

# 3. The lockfile must not pin anything from a registry or git source.
if grep -E '^source = ' Cargo.lock >/dev/null 2>&1; then
  echo "ERROR: Cargo.lock pins non-path sources:" >&2
  grep -B2 '^source = ' Cargo.lock >&2
  fail=1
fi

if [ "$fail" -eq 0 ]; then
  echo "OK: all dependencies resolve to in-repo paths (offline-safe)."
fi
exit "$fail"
