#!/usr/bin/env bash
# Dependency policy check — thin wrapper over the in-repo policy gate so
# there is exactly one source of truth for what the policy *is* (see
# tools/lint/src/lib.rs, rule DEPS): every dependency in every manifest is
# an in-repo path/workspace reference, Cargo.lock pins no registry or git
# sources, and broadmatch-telemetry stays dependency-free.
set -euo pipefail
cd "$(dirname "$0")/.."
exec cargo run --quiet -p lint -- deps
