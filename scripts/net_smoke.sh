#!/usr/bin/env bash
# Loopback-cluster smoke test: two sharded ad_server backends plus the
# scatter-gather front end exchange real TCP frames. Asserts a routed
# mutation becomes visible to a routed query and that the net_* metric
# families appear in the Prometheus exposition fetched over the wire
# (backend families via the Metrics opcode, router families from the
# front end's own registry).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --example ad_server
bin=target/release/examples/ad_server

"$bin" --listen 127.0.0.1:7701 --shard 0/2 &
b0=$!
"$bin" --listen 127.0.0.1:7702 --shard 1/2 &
b1=$!
trap 'kill "$b0" "$b1" 2>/dev/null || true' EXIT

# Wait for both listeners to come up (index build takes a few seconds).
up=""
for _ in $(seq 1 120); do
  if (exec 3<>/dev/tcp/127.0.0.1/7701) 2>/dev/null &&
     (exec 3<>/dev/tcp/127.0.0.1/7702) 2>/dev/null; then
    up=yes
    break
  fi
  sleep 0.5
done
[ -n "$up" ] || { echo "backends never came up"; exit 1; }

out=$(printf ':insert 990001 55 zz smoke phrase\nzz smoke phrase today\n:metrics\n:quit\n' |
  "$bin" --connect 127.0.0.1:7701,127.0.0.1:7702)

echo "$out" | grep -q "1 match(es)" ||
  { echo "routed insert did not become visible to a routed query"; echo "$out" | head -20; exit 1; }

for family in \
  net_connections_total \
  net_frames_in_total \
  net_frames_out_total \
  net_router_requests_total \
  net_router_query_latency_ms \
  net_backend_latency_ms \
  serve_queries_accepted_total; do
  echo "$out" | grep -q "$family" || { echo "missing $family in exposition"; exit 1; }
done

echo "net smoke OK"
